"""Two-pattern transition-delay test generation.

The paper's motivation (Section I) is about *how* the second pattern of
a two-pattern test can be applied:

``arbitrary``
    enhanced scan and FLH: V1 and V2 are independent, so V2 can be any
    stuck-at test and V1 any vector establishing the initial value --
    the best achievable coverage;
``skewed-load``
    V1 is V2 shifted by one scan position: most of V1 is forced by V2,
    leaving only the chain tail and the primary inputs free;
``broadside``
    V2's state part is the circuit's own response to V1: a genuine
    sequential justification problem, here attacked by bounded random
    search (plus functional random pairs), which is exactly why
    broadside "can suffer from poor fault coverage".

The generator runs a standard ATPG loop: deterministic test for the
first undetected fault, then fault-simulate the new pair against every
remaining fault and drop the lucky detections.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..errors import AtpgError
from ..netlist import Netlist
from ..power.logicsim import LogicSimulator
from .collapse import dominance_collapse_transition
from .fsim import FaultSimulator
from .models import TransitionFault
from .podem import Podem, justify

STYLE_ARBITRARY = "arbitrary"
STYLE_SKEWED = "skewed-load"
STYLE_BROADSIDE = "broadside"
#: Partial enhanced scan (Cheng et al.): only the *held* flip-flops can
#: present different values in V1 and V2; construct the engine with
#: ``held_state`` to use it.
STYLE_PARTIAL = "partial-enhanced"
STYLES = (STYLE_ARBITRARY, STYLE_SKEWED, STYLE_BROADSIDE)

Vector = Dict[str, int]


@dataclass(frozen=True)
class TwoPatternTest:
    """One (V1, V2) pair over the core inputs (PIs + state inputs)."""

    v1: Mapping[str, int]
    v2: Mapping[str, int]


@dataclass
class TransitionAtpgResult:
    """Outcome of transition ATPG under one application style."""

    style: str
    tests: List[TwoPatternTest] = field(default_factory=list)
    detected: Set[TransitionFault] = field(default_factory=set)
    untestable: Set[TransitionFault] = field(default_factory=set)
    aborted: Set[TransitionFault] = field(default_factory=set)
    n_faults: int = 0

    @property
    def coverage(self) -> float:
        """Detected fraction of all targeted faults."""
        if self.n_faults == 0:
            return 0.0
        return len(self.detected) / self.n_faults

    @property
    def effective_coverage(self) -> float:
        """Detected fraction of faults not proven untestable."""
        testable = self.n_faults - len(self.untestable)
        if testable == 0:
            return 0.0
        return len(self.detected) / testable


class TransitionAtpg:
    """Transition-fault ATPG engine for one netlist."""

    def __init__(self, netlist: Netlist, scan_chain: Optional[Sequence[str]] = None,
                 backtrack_limit: int = 50, seed: int = 2005,
                 held_state: Optional[Sequence[str]] = None,
                 deterministic_broadside: bool = True,
                 backend: str = "auto", batch_faults="auto"):
        self.netlist = netlist
        self.fsim = FaultSimulator(netlist, backend=backend,
                                   batch_faults=batch_faults)
        self.logic = LogicSimulator(netlist)
        self.podem = Podem(netlist, backtrack_limit)
        self.backtrack_limit = backtrack_limit
        self.rng = random.Random(seed)
        self.pis = tuple(netlist.inputs)
        self.state = tuple(netlist.state_inputs)
        self.scan_chain = tuple(scan_chain) if scan_chain else self.state
        #: For STYLE_PARTIAL: flip-flops whose V1 bits may differ from V2.
        self.held_state = (
            frozenset(held_state) if held_state is not None
            else frozenset(self.state)
        )
        #: Use the two-time-frame engine for deterministic broadside
        #: generation (random-search fallback otherwise).
        self.deterministic_broadside = deterministic_broadside
        self._broadside_engine = None

    def _broadside(self):
        """Lazily built two-frame deterministic broadside engine."""
        if self._broadside_engine is None:
            from .broadside import BroadsideAtpg

            self._broadside_engine = BroadsideAtpg(
                self.netlist, self.backtrack_limit
            )
        return self._broadside_engine

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _random_vector(self) -> Vector:
        return {
            net: self.rng.randint(0, 1)
            for net in self.pis + self.state
        }

    def _next_state(self, vector: Mapping[str, int]) -> Dict[str, int]:
        """State-output response of the core to ``vector``."""
        values = dict(vector)
        self.logic.eval_combinational(values, mask=1)
        return {
            ff: values[data] & 1
            for ff, data in zip(self.logic.dff_names, self.logic.dff_data)
        }

    def _site_value(self, vector: Mapping[str, int], net: str) -> int:
        values = dict(vector)
        self.logic.eval_combinational(values, mask=1)
        return values[net] & 1

    # ------------------------------------------------------------------
    # per-style V1 construction
    # ------------------------------------------------------------------
    def _v1_arbitrary(self, fault: TransitionFault,
                      v2: Vector) -> Optional[Vector]:
        return justify(
            self.netlist, fault.net, fault.initial_value,
            self.backtrack_limit,
        )

    def _v1_skewed(self, fault: TransitionFault,
                   v2: Vector, tries: int = 16) -> Optional[Vector]:
        """V1 with state = V2's state shifted back by one position."""
        chain = self.scan_chain
        forced: Dict[str, int] = {}
        # V2[chain[i]] was V1[chain[i-1]] before the last shift.
        for i in range(1, len(chain)):
            forced[chain[i - 1]] = v2[chain[i]]
        free_state = [chain[-1]] if chain else []
        for _ in range(tries):
            v1 = {net: self.rng.randint(0, 1) for net in self.pis}
            v1.update(forced)
            for net in free_state:
                v1[net] = self.rng.randint(0, 1)
            if self._site_value(v1, fault.net) == fault.initial_value:
                return v1
        return None

    def _v1_broadside(self, fault: TransitionFault,
                      v2: Vector, tries: int = 64) -> Optional[Vector]:
        """V1 whose next-state equals V2's state part."""
        want = {net: v2[net] for net in self.state}
        for _ in range(tries):
            v1 = self._random_vector()
            if self._next_state(v1) != want:
                continue
            if self._site_value(v1, fault.net) == fault.initial_value:
                return v1
        return None

    def _v1_partial(self, fault: TransitionFault,
                    v2: Vector, tries: int = 32) -> Optional[Vector]:
        """V1 free on held flip-flops and PIs; other state bits = V2."""
        forced = {
            net: v2[net] for net in self.state if net not in self.held_state
        }
        free = [net for net in self.state if net in self.held_state]
        for _ in range(tries):
            v1 = {net: self.rng.randint(0, 1) for net in self.pis}
            v1.update(forced)
            for net in free:
                v1[net] = self.rng.randint(0, 1)
            if self._site_value(v1, fault.net) == fault.initial_value:
                return v1
        return None

    def _build_v1(self, style: str, fault: TransitionFault,
                  v2: Vector) -> Optional[Vector]:
        if style == STYLE_ARBITRARY:
            return self._v1_arbitrary(fault, v2)
        if style == STYLE_SKEWED:
            return self._v1_skewed(fault, v2)
        if style == STYLE_BROADSIDE:
            return self._v1_broadside(fault, v2)
        if style == STYLE_PARTIAL:
            return self._v1_partial(fault, v2)
        raise AtpgError(f"unknown application style {style!r}")

    # ------------------------------------------------------------------
    # random functional pairs (broadside's bread and butter)
    # ------------------------------------------------------------------
    def random_pairs(self, style: str, count: int) -> List[TwoPatternTest]:
        """Style-consistent random pattern pairs."""
        pairs: List[TwoPatternTest] = []
        for _ in range(count):
            v1 = self._random_vector()
            if style == STYLE_BROADSIDE:
                state2 = self._next_state(v1)
                v2 = {net: self.rng.randint(0, 1) for net in self.pis}
                v2.update(state2)
            elif style == STYLE_SKEWED:
                v2 = {net: self.rng.randint(0, 1) for net in self.pis}
                chain = self.scan_chain
                if chain:
                    v2[chain[0]] = self.rng.randint(0, 1)
                    for i in range(1, len(chain)):
                        v2[chain[i]] = v1[chain[i - 1]]
            elif style == STYLE_PARTIAL:
                v2 = self._random_vector()
                for net in self.state:
                    if net not in self.held_state:
                        v2[net] = v1[net]  # no transition launchable here
            else:
                v2 = self._random_vector()
            pairs.append(TwoPatternTest(v1, v2))
        return pairs

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def generate(self, faults: Sequence[TransitionFault],
                 style: str = STYLE_ARBITRARY,
                 n_random_pairs: int = 64,
                 max_chunk: int = 60) -> TransitionAtpgResult:
        """Generate a two-pattern test set for ``faults`` under ``style``."""
        result = TransitionAtpgResult(style=style, n_faults=len(faults))
        remaining: List[TransitionFault] = list(faults)

        def drop_detected(pairs: List[TwoPatternTest]) -> None:
            nonlocal remaining
            if not pairs or not remaining:
                return
            for start in range(0, len(pairs), max_chunk):
                chunk = pairs[start: start + max_chunk]
                sim = self.fsim.simulate_transition(
                    remaining, [(t.v1, t.v2) for t in chunk],
                    drop_detected=True,
                )
                newly = {f for f, mask in sim.detected.items() if mask}
                if newly:
                    result.detected.update(newly)
                    remaining = [f for f in remaining if f not in newly]
                if not remaining:
                    return

        # Phase 1: random pairs (cheap coverage, style-consistent).
        if n_random_pairs > 0:
            random_tests = self.random_pairs(style, n_random_pairs)
            drop_detected(random_tests)
            if result.detected:
                result.tests.extend(random_tests)

        # Phase 2: deterministic per-fault generation.  Dominance-kept
        # faults go first: their tests detect the dominating (dropped)
        # faults for free, so the tail usually falls to fault dropping
        # instead of its own PODEM call.  Every fault still gets a turn
        # -- ordering never changes which faults are targeted.
        if len(remaining) > 1:
            kept = set(dominance_collapse_transition(self.netlist,
                                                     remaining))
            ordered = ([f for f in remaining if f in kept]
                       + [f for f in remaining if f not in kept])
        else:
            ordered = list(remaining)
        for fault in ordered:
            if fault in result.detected:
                continue
            if style == STYLE_BROADSIDE and self.deterministic_broadside:
                status, pair = self._broadside().generate(fault)
                if status == "untestable":
                    result.untestable.add(fault)
                    remaining = [f for f in remaining if f is not fault]
                elif status == "detected" and pair is not None:
                    result.tests.append(pair)
                    drop_detected([pair])
                    if fault not in result.detected:
                        result.aborted.add(fault)
                else:
                    result.aborted.add(fault)
                continue
            stuck = fault.equivalent_stuck
            atpg = self.podem.generate(stuck)
            if atpg.status == "untestable":
                result.untestable.add(fault)
                remaining = [f for f in remaining if f is not fault]
                continue
            if atpg.status == "aborted":
                result.aborted.add(fault)
                continue
            v2 = dict(atpg.test)
            v1 = self._build_v1(style, fault, v2)
            if v1 is None:
                if style == STYLE_ARBITRARY:
                    # No vector can initialize the site: untestable.
                    result.untestable.add(fault)
                    remaining = [f for f in remaining if f is not fault]
                else:
                    result.aborted.add(fault)
                continue
            pair = TwoPatternTest(v1, v2)
            result.tests.append(pair)
            drop_detected([pair])
        return result


def compare_styles(netlist: Netlist, faults: Sequence[TransitionFault],
                   scan_chain: Optional[Sequence[str]] = None,
                   seed: int = 2005,
                   n_random_pairs: int = 64,
                   backend: str = "auto", batch_faults="auto",
                   ) -> Dict[str, TransitionAtpgResult]:
    """Transition coverage under all three application styles.

    The paper's Section I/IV claim reproduced: arbitrary (enhanced scan
    = FLH) coverage dominates skewed-load, which dominates broadside.
    ``backend``/``batch_faults`` thread through to the per-style
    engines' fault simulators (results are backend-independent).
    """
    results: Dict[str, TransitionAtpgResult] = {}
    for style in STYLES:
        engine = TransitionAtpg(netlist, scan_chain, seed=seed,
                                backend=backend, batch_faults=batch_faults)
        results[style] = engine.generate(
            faults, style=style, n_random_pairs=n_random_pairs
        )
    return results
