"""Deterministic broadside transition ATPG via two-time-frame unrolling.

Broadside application fixes V2's state part to the circuit's response to
V1 -- a sequential justification problem.  The classic deterministic
attack unrolls the combinational core into two time frames:

* frame-1 inputs: V1's primary inputs and state;
* frame-2 state inputs are *wired to* frame-1's next-state nets;
* frame-2 primary inputs are free (V2's PI part).

A transition fault slow-to-rise(n) then becomes a single stuck-at-0 at
the frame-2 copy of ``n`` with the side requirement that the frame-1
copy carries 0 -- exactly what the extended PODEM
(:meth:`repro.fault.podem.Podem.generate` with ``require``) solves.

Even with a deterministic engine, many faults stay untestable under
broadside (the justification requirement is real), which is the paper's
Section I point; this module quantifies how much of the gap is search
weakness versus genuine untestability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import AtpgError
from ..netlist import Netlist, content_hash, from_dict, to_dict, validate
from ..obs import get_recorder
from ..power.logicsim import LogicSimulator
from .models import TransitionFault
from .podem import Podem
from .transition import TwoPatternTest

FRAME1 = "f1_"
FRAME2 = "f2_"

#: Unrolled netlists by source content hash.  Unrolling is O(gates) and
#: every BroadsideAtpg (one per TransitionAtpg engine, one per
#: experiment row) used to redo it; the cache hands the same unrolled
#: instance to every consumer, which also lets them share one compiled
#: form downstream.  Treat cached netlists as read-only.
_UNROLL_CACHE: Dict[str, Netlist] = {}

#: Bump when the unrolling scheme (net naming, output selection)
#: changes: persistent entries under the old schema then read as
#: misses instead of resurrecting a differently-shaped unroll.
UNROLL_CACHE_SCHEMA = 1

_DISK_TIER = None


def _disk_tier():
    """Persistent cache of unrolled netlists (``None`` if disabled)."""
    global _DISK_TIER
    from ..cache import DiskCache, default_cache_root, disk_cache_enabled

    if not disk_cache_enabled():
        return None
    root = default_cache_root()
    if _DISK_TIER is None or _DISK_TIER.root != root:
        _DISK_TIER = DiskCache("unroll", UNROLL_CACHE_SCHEMA, root=root)
    return _DISK_TIER


def unroll_two_frames(netlist: Netlist, use_cache: bool = True) -> Netlist:
    """Unrolled two-frame combinational core.

    Inputs: ``f1_<pi>``, ``f1_<ff>`` (V1) and ``f2_<pi>`` (V2's PIs).
    Frame-2 logic reads its state from frame-1's next-state nets.
    Outputs: frame-2 primary and state outputs (the capture points).

    Results are cached on the source netlist's content hash, in memory
    and -- as their JSON-stable dict form -- in the persistent disk
    tier (:mod:`repro.cache`), so repeated runs and worker processes
    skip the O(gates) unroll.  Pass ``use_cache=False`` for a private
    mutable copy.
    """
    key = content_hash(netlist) if use_cache else None
    if key is not None:
        cached = _UNROLL_CACHE.get(key)
        if cached is not None:
            return cached
        disk = _disk_tier()
        if disk is not None:
            payload = disk.get(key)
            if payload is not None:
                try:
                    un = from_dict(payload)
                except Exception as exc:
                    # Structurally valid cache entry, undecodable
                    # payload (written by a foreign/older netlist
                    # layout).  Reclaim the slot -- otherwise every
                    # call re-reads and re-discards the same bytes --
                    # and make the discard visible, mirroring the
                    # DiskCache corrupt-entry contract; the unroll
                    # below rewrites the entry in the current layout.
                    disk.remove(key)
                    get_recorder().warning(
                        "cache.foreign_payload",
                        counter="cache.foreign_payloads",
                        namespace=disk.namespace, key=key,
                        exc_type=type(exc).__name__, detail=str(exc),
                    )
                else:
                    _UNROLL_CACHE[key] = un
                    return un
    un = Netlist(f"{netlist.name}_x2")
    state_inputs = set(netlist.state_inputs)
    next_state: Dict[str, str] = {
        ff.name: ff.fanin[0] for ff in netlist.dffs()
    }

    for pi in netlist.inputs:
        un.add_input(FRAME1 + pi)
        un.add_input(FRAME2 + pi)
    for ff in netlist.state_inputs:
        un.add_input(FRAME1 + ff)

    def frame1_net(net: str) -> str:
        return FRAME1 + net

    def frame2_net(net: str) -> str:
        if net in state_inputs:
            # Frame-2 state = frame-1 next state.
            return FRAME1 + next_state[net]
        return FRAME2 + net

    for gate in netlist.gates():
        if not gate.is_combinational:
            continue
        un.add(
            FRAME1 + gate.name, gate.func,
            tuple(frame1_net(f) for f in gate.fanin),
            cell=gate.cell,
        )
        un.add(
            FRAME2 + gate.name, gate.func,
            tuple(frame2_net(f) for f in gate.fanin),
            cell=gate.cell,
        )

    declared = set()
    for capture in tuple(netlist.outputs) + tuple(netlist.state_outputs):
        out_net = frame2_net(capture)  # POs may be PIs or state inputs
        if out_net not in declared:
            un.add_output(out_net)
            declared.add(out_net)
    # Frame-1 primary outputs keep their drivers from dangling; the
    # fault lives only in frame 2, so they can never falsely detect.
    for po in netlist.outputs:
        out_net = frame1_net(po)
        if out_net not in declared:
            un.add_output(out_net)
            declared.add(out_net)
    validate(un)
    if key is not None:
        _UNROLL_CACHE[key] = un
        disk = _disk_tier()
        if disk is not None:
            disk.put(key, to_dict(un))
    return un


@dataclass
class BroadsideAtpg:
    """Deterministic broadside test generator for one netlist."""

    netlist: Netlist
    backtrack_limit: int = 100

    def __post_init__(self) -> None:
        self.unrolled = unroll_two_frames(self.netlist)
        self.podem = Podem(self.unrolled, self.backtrack_limit)
        self.logic = LogicSimulator(self.netlist)

    def generate(self, fault: TransitionFault,
                 ) -> Tuple[str, Optional[TwoPatternTest]]:
        """(status, test) for one transition fault under broadside.

        Status is ``"detected"``, ``"untestable"`` (proven under the
        two-frame model) or ``"aborted"``.
        """
        site = fault.net
        if site in set(self.netlist.state_inputs):
            # A flip-flop output has no distinct frame-2 copy (frame-2
            # state is wired to frame-1 next-state nets); leave these to
            # the simulation-based search.
            return "aborted", None
        if FRAME2 + site not in self.unrolled:
            raise AtpgError(f"fault site {site!r} not in the netlist")
        initial = fault.initial_value
        stuck = fault.equivalent_stuck
        result = self.podem.generate(
            stuck.__class__(FRAME2 + site, stuck.value),
            require=((FRAME1 + site, initial),),
        )
        if not result.detected:
            return result.status, None

        v1 = {}
        v2 = {}
        for pi in self.netlist.inputs:
            v1[pi] = result.test[FRAME1 + pi]
            v2[pi] = result.test[FRAME2 + pi]
        for ff in self.netlist.state_inputs:
            v1[ff] = result.test[FRAME1 + ff]
        # V2's state part is the functional response to V1.
        values = dict(v1)
        self.logic.eval_combinational(values, 1)
        for ff, data in zip(self.logic.dff_names, self.logic.dff_data):
            v2[ff] = values[data] & 1
        return "detected", TwoPatternTest(v1, v2)
