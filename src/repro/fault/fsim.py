"""Bit-parallel fault simulation.

Patterns are packed one-per-bit-lane into Python integers (arbitrary
width, so a whole test set can run in one pass).  For each fault the
good machine is simulated once and only the fault's fanout cone is
re-evaluated with the site forced to the stuck value -- the standard
single-fault propagation scheme.

Observation points are the combinational core outputs: primary outputs
plus flip-flop data inputs (captured into the scan chain and shifted
out, as in any full-scan flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import SimulationError
from ..netlist import Netlist, fanout_cone, evaluate_gate
from ..power.logicsim import LogicSimulator, pack_patterns
from .models import StuckFault, TransitionFault


@dataclass(frozen=True)
class FaultSimResult:
    """Outcome of a fault-simulation run."""

    detected: Dict[object, int]   # fault -> bitmask of detecting patterns
    n_patterns: int

    @property
    def detected_faults(self) -> List[object]:
        """Faults detected by at least one pattern."""
        return [f for f, mask in self.detected.items() if mask]

    @property
    def coverage(self) -> float:
        """Fraction of simulated faults detected."""
        if not self.detected:
            return 0.0
        return len(self.detected_faults) / len(self.detected)


class FaultSimulator:
    """Compiled fault simulator for one netlist's combinational core."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.sim = LogicSimulator(netlist)
        self.observe: Tuple[str, ...] = tuple(netlist.core_outputs)
        self._cone_cache: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    def _cone_order(self, net: str) -> Tuple[str, ...]:
        """Topologically sorted combinational fanout cone of ``net``."""
        cached = self._cone_cache.get(net)
        if cached is not None:
            return cached
        cone = fanout_cone(self.netlist, [net])
        order = tuple(name for name in self.sim.order if name in cone)
        self._cone_cache[net] = order
        return order

    def good_values(self, patterns: Sequence[Mapping[str, int]],
                    ) -> Tuple[Dict[str, int], int]:
        """Pack and simulate the fault-free machine."""
        values, mask = pack_patterns(
            patterns, list(self.netlist.inputs) + list(self.netlist.state_inputs)
        )
        self.sim.eval_combinational(values, mask)
        return values, mask

    # ------------------------------------------------------------------
    def detect_stuck(self, fault: StuckFault,
                     good: Mapping[str, int], mask: int) -> int:
        """Bitmask of patterns detecting ``fault`` given good values."""
        if fault.net not in self.netlist:
            raise SimulationError(f"fault site {fault.net!r} not in netlist")
        site_value = mask if fault.value else 0
        # Fault not excited where the good value equals the stuck value.
        excited = good[fault.net] ^ site_value
        if not (excited & mask):
            return 0
        faulty: Dict[str, int] = {fault.net: site_value}
        for name in self._cone_order(fault.net):
            gate = self.netlist.gate(name)
            fanin_vals = tuple(
                faulty.get(f, good[f]) for f in gate.fanin
            )
            faulty[name] = evaluate_gate(gate.func, fanin_vals, mask)
        detected = 0
        for out in self.observe:
            detected |= good[out] ^ faulty.get(out, good[out])
        return detected & mask

    def simulate_stuck(self, faults: Sequence[StuckFault],
                       patterns: Sequence[Mapping[str, int]],
                       ) -> FaultSimResult:
        """Fault-simulate a stuck-at fault list against a pattern set."""
        good, mask = self.good_values(patterns)
        detected = {
            fault: self.detect_stuck(fault, good, mask) for fault in faults
        }
        return FaultSimResult(detected=detected, n_patterns=len(patterns))

    # ------------------------------------------------------------------
    def simulate_transition(
        self,
        faults: Sequence[TransitionFault],
        pairs: Sequence[Tuple[Mapping[str, int], Mapping[str, int]]],
    ) -> FaultSimResult:
        """Fault-simulate transition faults against (V1, V2) pattern pairs.

        A pair detects slow-to-rise(n) iff V1 sets n = 0 and V2 detects
        n stuck-at-0 (dually for slow-to-fall); this is the standard
        transition-fault condition under fully enhanced (arbitrary)
        two-pattern application.
        """
        v1s = [pair[0] for pair in pairs]
        v2s = [pair[1] for pair in pairs]
        good1, mask = self.good_values(v1s)
        good2, mask2 = self.good_values(v2s)
        if mask2 != mask:
            raise SimulationError("pattern pair lists of unequal length")
        detected: Dict[object, int] = {}
        for fault in faults:
            site1 = good1[fault.net]
            # Launch bit set where V1's value equals the required initial.
            if fault.initial_value == 1:
                launch = site1 & mask
            else:
                launch = ~site1 & mask
            stuck_mask = self.detect_stuck(fault.equivalent_stuck, good2, mask)
            detected[fault] = launch & stuck_mask
        return FaultSimResult(detected=detected, n_patterns=len(pairs))


def random_pattern_coverage(netlist: Netlist,
                            faults: Sequence[StuckFault],
                            n_patterns: int = 256,
                            seed: int = 7) -> FaultSimResult:
    """Coverage of ``n_patterns`` uniform random patterns (BIST baseline)."""
    import random as _random

    rng = _random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    patterns = [
        {net: rng.randint(0, 1) for net in nets} for _ in range(n_patterns)
    ]
    return FaultSimulator(netlist).simulate_stuck(faults, patterns)
