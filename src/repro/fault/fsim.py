"""Bit-parallel fault simulation.

Patterns are packed one-per-bit-lane into Python integers (arbitrary
width, so a whole test set can run in one pass).  For each fault the
good machine is simulated once and only the fault's fanout cone is
re-evaluated with the site forced to the stuck value -- the standard
single-fault propagation scheme.

The inner loops run on the :class:`~repro.netlist.CompiledNetlist`
flat arrays: integer opcodes, integer fanin indices, and per-site cone
position lists cached on the compiled netlist (shared, via the content
hash cache, with every other simulator over the same circuit).

Observation points are the combinational core outputs: primary outputs
plus flip-flop data inputs (captured into the scan chain and shifted
out, as in any full-scan flow).

Patterns reaching the fault simulator must assign **every** primary
input and state input: packing runs in strict mode, so a missing net
raises :class:`~repro.errors.SimulationError` instead of being silently
zero-filled (which would quietly fault-simulate a different vector than
the caller intended).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import SimulationError
from ..netlist import Netlist
from ..power.logicsim import LogicSimulator, pack_patterns
from .models import StuckFault, TransitionFault


@dataclass(frozen=True)
class FaultSimResult:
    """Outcome of a fault-simulation run."""

    detected: Dict[object, int]   # fault -> bitmask of detecting patterns
    n_patterns: int

    @property
    def detected_faults(self) -> List[object]:
        """Faults detected by at least one pattern."""
        return [f for f, mask in self.detected.items() if mask]

    @property
    def coverage(self) -> float:
        """Fraction of simulated faults detected.

        Defined for every input: an empty fault list has coverage 0.0
        (nothing was simulated, so nothing was demonstrated detected)
        rather than raising ``ZeroDivisionError``.
        """
        if not self.detected:
            return 0.0
        return len(self.detected_faults) / len(self.detected)


class FaultSimulator:
    """Compiled fault simulator for one netlist's combinational core."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.sim = LogicSimulator(netlist)
        self.compiled = self.sim.compiled
        self.observe: Tuple[str, ...] = tuple(netlist.core_outputs)

    # ------------------------------------------------------------------
    def _cone_order(self, net: str) -> Tuple[str, ...]:
        """Topologically sorted combinational fanout cone of ``net``."""
        return self.compiled.cone_names(net)

    def good_values(self, patterns: Sequence[Mapping[str, int]],
                    strict: bool = True) -> Tuple[Dict[str, int], int]:
        """Pack and simulate the fault-free machine.

        With ``strict`` (the default) every pattern must assign every
        primary input and state input; pass ``strict=False`` to restore
        the historical zero-fill of missing nets.
        """
        values, mask = pack_patterns(
            patterns,
            list(self.netlist.inputs) + list(self.netlist.state_inputs),
            strict=strict,
        )
        self.sim.eval_combinational(values, mask)
        return values, mask

    def _good_array(self, patterns: Sequence[Mapping[str, int]],
                    ) -> Tuple[List[int], int]:
        """Strictly pack patterns and simulate, on the flat value array."""
        compiled = self.compiled
        names = compiled.names
        arr = [0] * len(names)
        n = len(patterns)
        for slot in range(compiled.n_prefix):
            net = names[slot]
            word = 0
            for i, pattern in enumerate(patterns):
                bit = pattern.get(net)
                if bit is None:
                    raise SimulationError(
                        f"pattern {i} assigns no value to net {net!r} "
                        f"(strict packing)"
                    )
                if bit & 1:
                    word |= 1 << i
            arr[slot] = word
        mask = (1 << n) - 1 if n else 0
        compiled.eval_into(arr, mask)
        return arr, mask

    # ------------------------------------------------------------------
    def _detect_stuck_arr(self, fault: StuckFault,
                          good: List[int], mask: int) -> int:
        """Detection bitmask of ``fault`` over a flat good-value array."""
        compiled = self.compiled
        slot = compiled.index.get(fault.net)
        if slot is None:
            raise SimulationError(f"fault site {fault.net!r} not in netlist")
        site_value = mask if fault.value else 0
        # Fault not excited where the good value equals the stuck value.
        if not ((good[slot] ^ site_value) & mask):
            return 0
        faulty = good.copy()
        faulty[slot] = site_value
        compiled.eval_into(faulty, mask, compiled.cone_positions(slot))
        detected = 0
        for out in compiled.observe_idx:
            detected |= good[out] ^ faulty[out]
        return detected & mask

    def detect_stuck(self, fault: StuckFault,
                     good: Mapping[str, int], mask: int) -> int:
        """Bitmask of patterns detecting ``fault`` given good values.

        ``good`` is the full net -> packed-word mapping produced by
        :meth:`good_values` (every net of the netlist must be present).
        """
        compiled = self.compiled
        try:
            arr = [good[name] for name in compiled.names]
        except KeyError as exc:
            raise SimulationError(
                f"good-value mapping has no entry for net {exc.args[0]!r}"
            ) from exc
        return self._detect_stuck_arr(fault, arr, mask)

    def simulate_stuck(self, faults: Sequence[StuckFault],
                       patterns: Sequence[Mapping[str, int]],
                       ) -> FaultSimResult:
        """Fault-simulate a stuck-at fault list against a pattern set."""
        good, mask = self._good_array(patterns)
        detected = {
            fault: self._detect_stuck_arr(fault, good, mask)
            for fault in faults
        }
        return FaultSimResult(detected=detected, n_patterns=len(patterns))

    # ------------------------------------------------------------------
    def simulate_transition(
        self,
        faults: Sequence[TransitionFault],
        pairs: Sequence[Tuple[Mapping[str, int], Mapping[str, int]]],
    ) -> FaultSimResult:
        """Fault-simulate transition faults against (V1, V2) pattern pairs.

        A pair detects slow-to-rise(n) iff V1 sets n = 0 and V2 detects
        n stuck-at-0 (dually for slow-to-fall); this is the standard
        transition-fault condition under fully enhanced (arbitrary)
        two-pattern application.

        Every V1 and V2 must assign every primary input and state input;
        a partially assigned pattern raises
        :class:`~repro.errors.SimulationError` (strict packing) rather
        than being silently zero-filled into a different test.
        """
        v1s = [pair[0] for pair in pairs]
        v2s = [pair[1] for pair in pairs]
        good1, mask = self._good_array(v1s)
        good2, _ = self._good_array(v2s)
        compiled = self.compiled
        detected: Dict[object, int] = {}
        for fault in faults:
            slot = compiled.index.get(fault.net)
            if slot is None:
                raise SimulationError(
                    f"fault site {fault.net!r} not in netlist"
                )
            site1 = good1[slot]
            # Launch bit set where V1's value equals the required initial.
            if fault.initial_value == 1:
                launch = site1 & mask
            else:
                launch = ~site1 & mask
            stuck_mask = self._detect_stuck_arr(
                fault.equivalent_stuck, good2, mask
            )
            detected[fault] = launch & stuck_mask
        return FaultSimResult(detected=detected, n_patterns=len(pairs))


def random_pattern_coverage(netlist: Netlist,
                            faults: Sequence[StuckFault],
                            n_patterns: int = 256,
                            seed: int = 7) -> FaultSimResult:
    """Coverage of ``n_patterns`` uniform random patterns (BIST baseline)."""
    import random as _random

    rng = _random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    patterns = [
        {net: rng.randint(0, 1) for net in nets} for _ in range(n_patterns)
    ]
    return FaultSimulator(netlist).simulate_stuck(faults, patterns)
