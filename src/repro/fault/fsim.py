"""Bit-parallel fault simulation.

Patterns are packed one-per-bit-lane into Python integers (arbitrary
width, so a whole test set can run in one pass).  For each fault the
good machine is simulated once and only the fault's fanout cone is
re-evaluated with the site forced to the stuck value -- the standard
single-fault propagation scheme.

The inner loops run on the :class:`~repro.netlist.CompiledNetlist`
flat arrays: integer opcodes, integer fanin indices, and per-site cone
position lists cached on the compiled netlist (shared, via the content
hash cache, with every other simulator over the same circuit).

Observation points are the combinational core outputs: primary outputs
plus flip-flop data inputs (captured into the scan chain and shifted
out, as in any full-scan flow).

Patterns reaching the fault simulator must assign **every** primary
input and state input: packing runs in strict mode, so a missing net
raises :class:`~repro.errors.SimulationError` instead of being silently
zero-filled (which would quietly fault-simulate a different vector than
the caller intended).

**Fault dropping**: ``simulate_stuck`` / ``simulate_transition`` accept
``drop_detected=True``, the mode the two-phase ATPG pipeline
(:mod:`repro.fault.atpg_flow`) runs in.  A dropped fault's mask is
*early-exit*: computation stops at the first observation point showing
a difference, so the mask is guaranteed non-zero exactly when the fault
is detected but need not enumerate every detecting pattern.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from ..errors import SimulationError
from ..netlist import Netlist
from ..obs import get_recorder
from ..power.logicsim import LogicSimulator, pack_patterns
from .backends import (
    BACKEND_AUTO,
    BACKEND_INT,
    BACKEND_NUMPY,
    BATCH_AUTO,
    get_wide_engine,
    resolve_batch_faults,
    select_backend,
    select_batch_faults,
)
from .models import StuckFault, TransitionFault

#: A good-machine state: either the net -> packed-word mapping of
#: :meth:`FaultSimulator.good_values` or the flat value array of
#: :meth:`FaultSimulator.good_array` (cheaper for per-fault callers).
GoodValues = Union[Mapping[str, int], Sequence[int]]


@dataclass(frozen=True)
class FaultSimResult:
    """Outcome of a fault-simulation run."""

    detected: Dict[object, int]   # fault -> bitmask of detecting patterns
    n_patterns: int

    @property
    def detected_faults(self) -> List[object]:
        """Faults detected by at least one pattern."""
        return [f for f, mask in self.detected.items() if mask]

    @property
    def coverage(self) -> float:
        """Fraction of simulated faults detected.

        Defined for every input: an empty fault list has coverage 0.0
        (nothing was simulated, so nothing was demonstrated detected)
        rather than raising ``ZeroDivisionError``.
        """
        if not self.detected:
            return 0.0
        return len(self.detected_faults) / len(self.detected)


class FaultSimulator:
    """Compiled fault simulator for one netlist's combinational core.

    ``backend`` selects the evaluation engine for the bulk entry points
    (:meth:`simulate_stuck`, :meth:`simulate_stuck_packed`,
    :meth:`simulate_transition`): ``"int"`` runs the packed-int
    kernels, ``"numpy"`` the wide-batch engine of
    :mod:`repro.netlist.wide`, and ``"auto"`` (the default) picks
    numpy for multi-word batches on large circuits when it is
    importable (see :mod:`repro.fault.backends`).  Both backends are
    bit-identical; the low-level per-fault methods
    (:meth:`detect_stuck_arr`, :meth:`detect_stuck_many`) always run
    the integer kernels.

    ``batch_faults`` controls how many faults the wide engine packs
    into one plan walk (``"auto"`` sizes the batch from circuit stats,
    an int pins it, ``1`` restores the per-fault wide path).  Purely a
    performance knob -- results are identical at every batch size.
    """

    def __init__(self, netlist: Netlist, backend: str = BACKEND_AUTO,
                 batch_faults=BATCH_AUTO):
        self.netlist = netlist
        self.sim = LogicSimulator(netlist)
        self.compiled = self.sim.compiled
        self.observe: Tuple[str, ...] = tuple(netlist.core_outputs)
        self.backend = backend
        self.batch_faults = resolve_batch_faults(batch_faults)
        self._wide_engine = None

    def _wide(self):
        """The shared wide-batch engine (built lazily, cached)."""
        if self._wide_engine is None:
            self._wide_engine = get_wide_engine(self.compiled)
        return self._wide_engine

    def _effective_backend(self, n_patterns: int) -> str:
        """Backend actually used for a batch of ``n_patterns``.

        Empty batches always run the integer kernels: there is nothing
        to vectorize and the int path handles a zero mask natively.
        """
        if n_patterns <= 0:
            return BACKEND_INT
        compiled = self.compiled
        n_gates = len(compiled.names) - compiled.n_prefix
        return select_backend(self.backend, n_patterns, n_gates)

    def _batch_for(self, n_patterns: int) -> int:
        """Effective faults-per-batch for one wide call."""
        return select_batch_faults(self.batch_faults, n_patterns,
                                   len(self.compiled.names))

    # ------------------------------------------------------------------
    def _cone_order(self, net: str) -> Tuple[str, ...]:
        """Topologically sorted combinational fanout cone of ``net``."""
        return self.compiled.cone_names(net)

    def good_values(self, patterns: Sequence[Mapping[str, int]],
                    strict: bool = True) -> Tuple[Dict[str, int], int]:
        """Pack and simulate the fault-free machine.

        With ``strict`` (the default) every pattern must assign every
        primary input and state input; pass ``strict=False`` to restore
        the historical zero-fill of missing nets.
        """
        values, mask = pack_patterns(
            patterns,
            list(self.netlist.inputs) + list(self.netlist.state_inputs),
            strict=strict,
        )
        self.sim.eval_combinational(values, mask)
        return values, mask

    def good_array(self, patterns: Sequence[Mapping[str, int]],
                   ) -> Tuple[List[int], int]:
        """Strictly pack patterns and simulate, on the flat value array.

        The returned array can be fed straight to :meth:`detect_stuck`
        (or :meth:`detect_stuck_arr`): per-fault callers -- the ATPG
        pipeline's phase-2 dropping loop foremost -- pay the O(nets)
        packing cost once per pattern set instead of once per fault.
        """
        compiled = self.compiled
        arr = [0] * len(compiled.names)
        arr[:compiled.n_prefix] = self._prefix_from_patterns(patterns)
        mask = (1 << len(patterns)) - 1 if patterns else 0
        compiled.eval_into(arr, mask)
        return arr, mask

    def _prefix_from_patterns(self, patterns: Sequence[Mapping[str, int]],
                              ) -> List[int]:
        """Strictly packed input words, one per prefix slot.

        Shared by both backends so strict-packing failures raise the
        same error regardless of the engine in use.
        """
        compiled = self.compiled
        names = compiled.names
        prefix = [0] * compiled.n_prefix
        for slot in range(compiled.n_prefix):
            net = names[slot]
            word = 0
            for i, pattern in enumerate(patterns):
                bit = pattern.get(net)
                if bit is None:
                    raise SimulationError(
                        f"pattern {i} assigns no value to net {net!r} "
                        f"(strict packing)"
                    )
                if bit & 1:
                    word |= 1 << i
            prefix[slot] = word
        return prefix

    def _prefix_from_words(self, words: Mapping[str, int],
                           mask: int) -> List[int]:
        """Strictly gathered pre-packed input words per prefix slot."""
        compiled = self.compiled
        names = compiled.names
        prefix = [0] * compiled.n_prefix
        for slot in range(compiled.n_prefix):
            net = names[slot]
            word = words.get(net)
            if word is None:
                raise SimulationError(
                    f"packed words assign no value to net {net!r} "
                    f"(strict packing)"
                )
            prefix[slot] = word & mask
        return prefix

    def good_array_from_words(self, words: Mapping[str, int],
                              n_patterns: int) -> Tuple[List[int], int]:
        """Good-machine flat array from pre-packed per-net input words.

        ``words`` maps every primary input and state input to a packed
        word (bit *i* = pattern *i*); the random-pattern phase builds
        these straight from the RNG without materializing per-pattern
        dicts.  Missing nets raise (strict packing).
        """
        compiled = self.compiled
        arr = [0] * len(compiled.names)
        mask = (1 << n_patterns) - 1 if n_patterns else 0
        arr[:compiled.n_prefix] = self._prefix_from_words(words, mask)
        compiled.eval_into(arr, mask)
        return arr, mask

    # ------------------------------------------------------------------
    def detect_stuck_arr(self, fault: StuckFault, good: Sequence[int],
                         mask: int, early_exit: bool = False) -> int:
        """Detection bitmask of ``fault`` over a flat good-value array.

        With ``early_exit`` the scan over observation points stops at
        the first difference: the result is non-zero iff the fault is
        detected, but is not necessarily the full per-pattern mask --
        the contract of fault-dropping callers.
        """
        compiled = self.compiled
        slot = compiled.index.get(fault.net)
        if slot is None:
            raise SimulationError(f"fault site {fault.net!r} not in netlist")
        site_value = mask if fault.value else 0
        # Fault not excited where the good value equals the stuck value.
        if not ((good[slot] ^ site_value) & mask):
            return 0
        faulty = list(good)
        faulty[slot] = site_value
        compiled.eval_into(faulty, mask, compiled.cone_positions(slot))
        detected = 0
        for out in compiled.observe_idx:
            diff = (good[out] ^ faulty[out]) & mask
            if diff:
                detected |= diff
                if early_exit:
                    break
        return detected

    # Backward-compatible alias (pre-flow internal name).
    _detect_stuck_arr = detect_stuck_arr

    def detect_stuck_many(self, faults: Sequence[StuckFault],
                          good: Sequence[int], mask: int,
                          early_exit: bool = False,
                          ) -> Dict[object, int]:
        """Detection masks for a whole fault list over one good array.

        One scratch copy of the good array is shared by every fault:
        after each fault's cone re-evaluation only the cone slots are
        restored, so the per-fault cost is O(cone), not O(nets).  Same
        ``early_exit`` contract as :meth:`detect_stuck_arr`.
        """
        compiled = self.compiled
        index = compiled.index
        observe = compiled.observe_idx
        cone_positions = compiled.cone_positions
        eval_into = compiled.eval_into
        base = compiled.n_prefix
        faulty = list(good)
        detected: Dict[object, int] = {}
        for fault in faults:
            slot = index.get(fault.net)
            if slot is None:
                raise SimulationError(
                    f"fault site {fault.net!r} not in netlist"
                )
            site_value = mask if fault.value else 0
            if not ((good[slot] ^ site_value) & mask):
                detected[fault] = 0
                continue
            cone = cone_positions(slot)
            faulty[slot] = site_value
            eval_into(faulty, mask, cone)
            det = 0
            for out in observe:
                diff = (good[out] ^ faulty[out]) & mask
                if diff:
                    det |= diff
                    if early_exit:
                        break
            detected[fault] = det
            faulty[slot] = good[slot]
            for p in cone:
                s = base + p
                faulty[s] = good[s]
        return detected

    def detect_stuck(self, fault: StuckFault,
                     good: GoodValues, mask: int) -> int:
        """Bitmask of patterns detecting ``fault`` given good values.

        ``good`` is either the net -> packed-word mapping produced by
        :meth:`good_values` (every net of the netlist must be present)
        or the flat value array of :meth:`good_array`, which skips the
        O(nets) per-call flattening entirely.
        """
        if not isinstance(good, Mapping):
            return self.detect_stuck_arr(fault, good, mask)
        compiled = self.compiled
        try:
            arr = [good[name] for name in compiled.names]
        except KeyError as exc:
            raise SimulationError(
                f"good-value mapping has no entry for net {exc.args[0]!r}"
            ) from exc
        return self.detect_stuck_arr(fault, arr, mask)

    # -- wide-batch (numpy) paths --------------------------------------
    def _wide_good(self, prefix: List[int], n_patterns: int):
        """Pack + evaluate the good machine on the wide engine."""
        engine = self._wide()
        maskw = engine.mask_words(n_patterns)
        values = engine.pack_prefix(prefix, n_patterns)
        engine.eval_good(values, maskw)
        return engine, values, maskw

    def _wide_detect_stuck(self, faults: Sequence[StuckFault],
                           prefix: List[int], n_patterns: int,
                           drop_detected: bool) -> Dict[object, int]:
        engine, good, maskw = self._wide_good(prefix, n_patterns)
        zero = maskw ^ maskw
        index = self.compiled.index
        sites = []
        for fault in faults:
            slot = index.get(fault.net)
            if slot is None:
                raise SimulationError(
                    f"fault site {fault.net!r} not in netlist"
                )
            sites.append((slot, maskw if fault.value else zero, None))
        masks = engine.detect_batched(sites, good, maskw,
                                      self._batch_for(n_patterns),
                                      early_exit=drop_detected)
        return dict(zip(faults, masks))

    def _wide_transition_masks(self, faults, prefix1, prefix2, n_pairs,
                               drop_detected) -> FaultSimResult:
        from ..netlist.wide import word_from_row
        engine, good1, maskw = self._wide_good(prefix1, n_pairs)
        _, good2, _ = self._wide_good(prefix2, n_pairs)
        zero = maskw ^ maskw
        index = self.compiled.index
        detected: Dict[object, int] = {}
        pending = []   # (fault, launch_int, site tuple)
        for fault in faults:
            slot = index.get(fault.net)
            if slot is None:
                raise SimulationError(
                    f"fault site {fault.net!r} not in netlist"
                )
            site1 = good1[slot]
            # Launch bit set where V1's value equals the required initial.
            launch = site1 if fault.initial_value == 1 else site1 ^ maskw
            if not launch.any():
                detected[fault] = 0
                continue
            stuck = fault.equivalent_stuck
            site_row = maskw if stuck.value else zero
            limit = launch if drop_detected else None
            detected[fault] = None
            pending.append((fault, word_from_row(launch),
                            (slot, site_row, limit)))
        if pending:
            masks = engine.detect_batched([p[2] for p in pending], good2,
                                          maskw, self._batch_for(n_pairs),
                                          early_exit=drop_detected)
            for (fault, launch_int, _), stuck_mask in zip(pending, masks):
                detected[fault] = launch_int & stuck_mask
        return FaultSimResult(detected=detected, n_patterns=n_pairs)

    # -- bulk entry points ---------------------------------------------
    def simulate_stuck(self, faults: Sequence[StuckFault],
                       patterns: Sequence[Mapping[str, int]],
                       drop_detected: bool = False) -> FaultSimResult:
        """Fault-simulate a stuck-at fault list against a pattern set.

        ``drop_detected`` switches on the fault-dropping contract:
        per-fault masks are computed with early exit (non-zero iff
        detected, not necessarily complete).
        """
        with get_recorder().span("fsim.stuck", cat="fsim",
                                 circuit=self.netlist.name,
                                 n_faults=len(faults),
                                 n_patterns=len(patterns),
                                 drop=drop_detected):
            if self._effective_backend(len(patterns)) == BACKEND_NUMPY:
                detected = self._wide_detect_stuck(
                    faults, self._prefix_from_patterns(patterns),
                    len(patterns), drop_detected)
            else:
                good, mask = self.good_array(patterns)
                detected = self.detect_stuck_many(faults, good, mask,
                                                  early_exit=drop_detected)
        return FaultSimResult(detected=detected, n_patterns=len(patterns))

    def simulate_stuck_packed(self, faults: Sequence[StuckFault],
                              words: Mapping[str, int], n_patterns: int,
                              drop_detected: bool = False) -> FaultSimResult:
        """Like :meth:`simulate_stuck`, from pre-packed input words."""
        with get_recorder().span("fsim.stuck_packed", cat="fsim",
                                 circuit=self.netlist.name,
                                 n_faults=len(faults),
                                 n_patterns=n_patterns,
                                 drop=drop_detected):
            if self._effective_backend(n_patterns) == BACKEND_NUMPY:
                mask = (1 << n_patterns) - 1 if n_patterns else 0
                detected = self._wide_detect_stuck(
                    faults, self._prefix_from_words(words, mask),
                    n_patterns, drop_detected)
            else:
                good, mask = self.good_array_from_words(words, n_patterns)
                detected = self.detect_stuck_many(faults, good, mask,
                                                  early_exit=drop_detected)
        return FaultSimResult(detected=detected, n_patterns=n_patterns)

    # ------------------------------------------------------------------
    def simulate_transition(
        self,
        faults: Sequence[TransitionFault],
        pairs: Sequence[Tuple[Mapping[str, int], Mapping[str, int]]],
        drop_detected: bool = False,
    ) -> FaultSimResult:
        """Fault-simulate transition faults against (V1, V2) pattern pairs.

        A pair detects slow-to-rise(n) iff V1 sets n = 0 and V2 detects
        n stuck-at-0 (dually for slow-to-fall); this is the standard
        transition-fault condition under fully enhanced (arbitrary)
        two-pattern application.

        Every V1 and V2 must assign every primary input and state input;
        a partially assigned pattern raises
        :class:`~repro.errors.SimulationError` (strict packing) rather
        than being silently zero-filled into a different test.

        ``drop_detected`` applies the early-exit mask contract of
        :meth:`simulate_stuck` to the V2 stuck-at detection step.
        """
        rec = get_recorder()
        span = rec.span("fsim.transition", cat="fsim",
                        circuit=self.netlist.name, n_faults=len(faults),
                        n_pairs=len(pairs), drop=drop_detected)
        v1s = [pair[0] for pair in pairs]
        v2s = [pair[1] for pair in pairs]
        with span:
            if self._effective_backend(len(pairs)) == BACKEND_NUMPY:
                return self._wide_transition_masks(
                    faults, self._prefix_from_patterns(v1s),
                    self._prefix_from_patterns(v2s), len(pairs),
                    drop_detected)
            good1, mask = self.good_array(v1s)
            good2, _ = self.good_array(v2s)
            return self._transition_masks(faults, good1, good2, mask,
                                          len(pairs), drop_detected)

    def _transition_masks(self, faults, good1, good2, mask, n_pairs,
                          drop_detected) -> FaultSimResult:
        compiled = self.compiled
        detected: Dict[object, int] = {}
        for fault in faults:
            slot = compiled.index.get(fault.net)
            if slot is None:
                raise SimulationError(
                    f"fault site {fault.net!r} not in netlist"
                )
            site1 = good1[slot]
            # Launch bit set where V1's value equals the required initial.
            if fault.initial_value == 1:
                launch = site1 & mask
            else:
                launch = ~site1 & mask
            if not launch:
                detected[fault] = 0
                continue
            stuck_mask = self.detect_stuck_arr(
                fault.equivalent_stuck, good2,
                launch if drop_detected else mask,
                early_exit=drop_detected,
            )
            detected[fault] = launch & stuck_mask
        return FaultSimResult(detected=detected, n_patterns=n_pairs)


def random_pattern_words(netlist: Netlist, n_patterns: int,
                         seed: int = 7) -> Dict[str, int]:
    """Packed uniform random words, one per core input net.

    Seed contract (since the fault-dropping pipeline): one
    ``random.Random(seed).getrandbits(n_patterns)`` draw per net, in
    core-input order (primary inputs, then state inputs).  This
    replaced the historical per-pattern ``randint`` stream -- patterns
    for a given seed differ from pre-flow releases, but remain fully
    deterministic and identical across circuits sharing input names.
    """
    rng = random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    if n_patterns <= 0:
        return {net: 0 for net in nets}
    return {net: rng.getrandbits(n_patterns) for net in nets}


def random_pattern_coverage(netlist: Netlist,
                            faults: Sequence[StuckFault],
                            n_patterns: int = 256,
                            seed: int = 7) -> FaultSimResult:
    """Coverage of ``n_patterns`` uniform random patterns (BIST baseline).

    The patterns are generated as packed words per input net
    (:func:`random_pattern_words`) and fed straight to the packed fault
    simulator -- no per-pattern dicts, no repacking.
    """
    words = random_pattern_words(netlist, n_patterns, seed)
    return FaultSimulator(netlist).simulate_stuck_packed(
        faults, words, n_patterns
    )
