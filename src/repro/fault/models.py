"""Fault models: single stuck-at and transition-delay faults.

Faults live on *nets* (gate outputs / stems); input-pin faults collapse
onto them through the usual equivalence rules for the test-generation
purposes of this reproduction.  A transition fault is the standard
slow-to-rise / slow-to-fall delay fault: detected by a two-pattern test
whose first pattern (V1) sets the initial value and whose second pattern
(V2) both launches the transition and detects the corresponding
stuck-at fault at the site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..netlist import Netlist

RISE = "rise"
FALL = "fall"


@dataclass(frozen=True, order=True)
class StuckFault:
    """Single stuck-at fault on a net."""

    net: str
    value: int  # 0 = stuck-at-0, 1 = stuck-at-1

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")
        object.__setattr__(self, "_hash", hash((self.net, self.value)))

    def __str__(self) -> str:
        return f"{self.net}/sa{self.value}"


@dataclass(frozen=True, order=True)
class TransitionFault:
    """Slow-to-rise or slow-to-fall delay fault on a net."""

    net: str
    direction: str  # RISE or FALL

    def __post_init__(self) -> None:
        if self.direction not in (RISE, FALL):
            raise ValueError("direction must be 'rise' or 'fall'")
        object.__setattr__(self, "_hash", hash((self.net, self.direction)))

    @property
    def initial_value(self) -> int:
        """Value V1 must establish at the site."""
        return 0 if self.direction == RISE else 1

    @property
    def equivalent_stuck(self) -> StuckFault:
        """Stuck-at fault V2 must detect (the late value)."""
        return StuckFault(self.net, self.initial_value)

    def __str__(self) -> str:
        return f"{self.net}/slow-to-{self.direction}"


def _cached_hash(self) -> int:
    return self._hash


# Faults are dict/set keys in every fault-simulation and dropping loop;
# the dataclass-generated __hash__ re-hashes the field tuple on each
# call, so precompute it once in __post_init__.  Must be assigned after
# class creation: a class-body __hash__ would be overwritten by the
# frozen dataclass machinery.
StuckFault.__hash__ = _cached_hash          # type: ignore[assignment]
TransitionFault.__hash__ = _cached_hash     # type: ignore[assignment]


def all_stuck_faults(netlist: Netlist) -> List[StuckFault]:
    """Both stuck-at faults on every combinational net and state input."""
    faults: List[StuckFault] = []
    for gate in netlist.gates():
        if gate.is_combinational or gate.is_dff or gate.is_input:
            faults.append(StuckFault(gate.name, 0))
            faults.append(StuckFault(gate.name, 1))
    return sorted(faults)


def all_transition_faults(netlist: Netlist) -> List[TransitionFault]:
    """Both transition faults on every combinational net and state input."""
    faults: List[TransitionFault] = []
    for gate in netlist.gates():
        if gate.is_combinational or gate.is_dff or gate.is_input:
            faults.append(TransitionFault(gate.name, RISE))
            faults.append(TransitionFault(gate.name, FALL))
    return sorted(faults)
