"""Static compaction of two-pattern test sets.

The paper weighs alternatives by "fault coverage and required number of
test patterns"; test length is tester time.  Classic reverse-order
static compaction: fault-simulate the tests from last to first, keeping
a test only if it detects some fault no kept test detects.  Coverage is
preserved exactly (every fault detected by the original set is detected
by a kept test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..netlist import Netlist
from .fsim import FaultSimulator
from .models import TransitionFault
from .transition import TwoPatternTest


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of one compaction run."""

    kept: Tuple[TwoPatternTest, ...]
    original_count: int
    detected_faults: int

    @property
    def ratio(self) -> float:
        """Kept share of the original test count."""
        if self.original_count == 0:
            return 1.0
        return len(self.kept) / self.original_count


def merge_test_cubes(cubes: Sequence[dict],
                     fill: int = 0) -> List[dict]:
    """Greedy compatible-merge of partially specified test cubes.

    Two cubes are compatible when they agree on every input both assign;
    the merge is their union.  Greedy first-fit over the list (the
    classic static compaction on cubes); unassigned inputs keep their
    don't-care status in the returned cubes (``fill`` them at apply
    time).  Typically shrinks a one-test-per-fault stuck-at set several
    fold.
    """
    merged: List[dict] = []
    for cube in cubes:
        for existing in merged:
            if any(
                existing.get(net, value) != value
                for net, value in cube.items()
            ):
                continue
            existing.update(cube)
            break
        else:
            merged.append(dict(cube))
    return merged


def fill_cube(cube: dict, inputs: Sequence[str], fill: int = 0) -> dict:
    """Expand a cube into a full vector, filling don't-cares."""
    return {net: cube.get(net, fill) for net in inputs}


def compact_two_pattern_tests(netlist: Netlist,
                              faults: Sequence[TransitionFault],
                              tests: Sequence[TwoPatternTest],
                              chunk: int = 60, backend: str = "auto",
                              batch_faults="auto") -> CompactionResult:
    """Reverse-order static compaction of a two-pattern test set.

    Returns the kept tests in their original relative order.  The
    detection matrix is built bit-parallel in chunks, then the greedy
    reverse pass runs on plain sets; the simulation backend never
    changes which tests are kept.
    """
    if not tests:
        return CompactionResult((), 0, 0)
    sim = FaultSimulator(netlist, backend=backend,
                         batch_faults=batch_faults)
    # detections[i] = set of fault indices test i detects.
    detections: List[Set[int]] = [set() for _ in tests]
    fault_list = list(faults)
    for start in range(0, len(tests), chunk):
        batch = tests[start: start + chunk]
        result = sim.simulate_transition(
            fault_list, [(t.v1, t.v2) for t in batch]
        )
        for f_idx, fault in enumerate(fault_list):
            mask = result.detected[fault]
            while mask:
                low = mask & -mask
                bit = low.bit_length() - 1
                detections[start + bit].add(f_idx)
                mask ^= low

    covered: Set[int] = set()
    keep_indices: List[int] = []
    for i in range(len(tests) - 1, -1, -1):
        new = detections[i] - covered
        if new:
            covered |= new
            keep_indices.append(i)
    keep_indices.reverse()
    kept = tuple(tests[i] for i in keep_indices)
    return CompactionResult(
        kept=kept,
        original_count=len(tests),
        detected_faults=len(covered),
    )
