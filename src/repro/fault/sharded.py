"""Sharded fault-parallel simulation over a persistent worker pool.

The bit-parallel fault simulator (:mod:`repro.fault.fsim`) is
embarrassingly parallel over *faults*: each fault's detection mask is
a function of the good machine and its own fanout cone only.  This
module partitions a fault list into shards and runs drop-mode fault
simulation across a pool of **persistent** worker processes:

* workers are forked once per :class:`ShardedFaultSimulator` lifetime
  (not once per task, unlike
  :class:`repro.experiments.parallel.ParallelRunner`);
* each worker receives the netlist **once** at startup (its serialized
  dict form, so the pool also works under spawn), compiles it locally
  -- or loads the lowering straight from the persistent disk cache
  (:mod:`repro.cache`) -- and then streams shard requests over its
  pipe;
* results merge **deterministically**: per-fault masks do not depend
  on which shard computed them, and the merged
  :class:`~repro.fault.fsim.FaultSimResult` lists faults in the exact
  order of the submitted fault list, so serial and sharded runs are
  interchangeable bit for bit (``tests/fault/test_sharded.py`` pins
  this on every catalog circuit, drop mode included);
* for multi-round callers (the two-phase ATPG pipeline), dropped-fault
  sets are exchanged between rounds: each worker drops its own
  detections locally, and :meth:`ShardedFaultSimulator.drop_faults`
  broadcasts externally retired faults (PODEM-detected targets,
  untestable proofs) so cross-shard dropping converges on exactly the
  serial active set;
* workers double as **test-generation sessions**: a ``podem`` request
  runs a resumable :class:`~repro.fault.podem.PodemSearch` in bounded
  slices, polling the pipe between slices so cancellation and
  interleaved fault-simulation rounds stay responsive, and SCOAP
  guidance ships at most once per content hash
  (:meth:`ShardedFaultSimulator.ensure_guidance`).  The parallel-ATPG
  coordinator in :mod:`repro.fault.atpg_flow` builds on
  :meth:`~ShardedFaultSimulator.podem_submit` /
  :meth:`~ShardedFaultSimulator.podem_poll` /
  :meth:`~ShardedFaultSimulator.podem_cancel`, with
  :meth:`~ShardedFaultSimulator.recover_workers` respawning any worker
  that dies mid-search.

Worker errors are **structured**: a shard that raises (e.g. strict
packing rejecting a pattern that misses a net) replies with a typed
error record and the facade raises
:class:`~repro.errors.SimulationError` naming the shard -- the pool
survives and stays usable; nothing hangs on a dead queue.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from multiprocessing.connection import wait as _wait_connections
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..netlist import Netlist, from_dict, to_dict
from ..obs import get_recorder
from .backends import (
    BACKEND_AUTO,
    BACKEND_INT,
    BATCH_AUTO,
    resolve_backend,
    resolve_batch_faults,
    select_batch_faults,
)
from .fsim import FaultSimResult, FaultSimulator
from .models import StuckFault
from .podem import DEFAULT_SEARCH_SLICE, Podem

#: Seconds the parent waits for a worker's post-compile readiness.
READY_TIMEOUT = 300.0
#: Join grace before escalating to terminate/kill at close time.
_JOIN_GRACE = 5.0

#: Exit code of the ``("die",)`` test hook, distinctive enough that a
#: worker killed on purpose is never mistaken for an OOM or a signal.
_DIE_EXIT_CODE = 17


def _cpu_quota_cores(cgroup_root: str = "/sys/fs/cgroup") -> Optional[float]:
    """Cores allowed by the container's cgroup CPU quota, or ``None``.

    Reads cgroup v2 ``cpu.max`` (``"<quota|max> <period>"``) first,
    then the cgroup v1 pair ``cpu/cpu.cfs_quota_us`` /
    ``cpu/cpu.cfs_period_us``.  Unreadable or malformed files and the
    unlimited sentinels (``max``, quota ``-1``) all mean "no quota" --
    the probe must never raise on an exotic host.
    """
    try:
        with open(os.path.join(cgroup_root, "cpu.max")) as fh:
            fields = fh.read().split()
        if fields and fields[0] != "max":
            quota = int(fields[0])
            period = int(fields[1]) if len(fields) > 1 else 100_000
            if quota > 0 and period > 0:
                return quota / period
    except (OSError, ValueError):
        pass
    try:
        v1 = os.path.join(cgroup_root, "cpu")
        with open(os.path.join(v1, "cpu.cfs_quota_us")) as fh:
            quota = int(fh.read().strip())
        with open(os.path.join(v1, "cpu.cfs_period_us")) as fh:
            period = int(fh.read().strip())
        if quota > 0 and period > 0:
            return quota / period
    except (OSError, ValueError):
        pass
    return None


def usable_cores(cgroup_root: str = "/sys/fs/cgroup") -> int:
    """CPU cores this process can actually use, never less than 1.

    The CPU-affinity mask (cpusets, taskset) intersected with the
    container's cgroup CPU *quota* -- a pod limited to ``200m`` CPU
    reports 1 usable core even when the node exposes 64, so sizing a
    worker pool from this number no longer over-provisions throttled
    containers.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        affinity = os.cpu_count() or 1
    quota = _cpu_quota_cores(cgroup_root)
    if quota is not None:
        affinity = min(affinity, max(1, int(quota)))
    return max(1, affinity)


def _record_swallowed(where: str, exc: BaseException) -> None:
    """Make a deliberately-swallowed exception visible.

    Shutdown/backstop paths keep their original control flow (the
    swallow is correct -- nothing useful can be done with a broken
    pipe at close time), but each one now emits a warning event and
    bumps ``pool.swallowed_errors`` so tests and the CI trace check
    can assert the count is zero on a healthy run.
    """
    get_recorder().warning(
        "pool.swallowed_error", counter="pool.swallowed_errors",
        where=where, exc_type=type(exc).__name__, detail=str(exc),
    )


def shard_faults(faults: Sequence[StuckFault], n_shards: int,
                 block: int = 1) -> List[List[StuckFault]]:
    """Deterministic round-robin partition of a fault list.

    With the default ``block=1``, shard ``i`` gets ``faults[i::n_shards]``;
    relative order inside a shard follows the input list.  Round-robin
    statistically balances expensive (large-cone) and cheap faults
    across shards, and the assignment depends only on ``(faults,
    n_shards, block)`` -- never on timing -- so repeated runs shard
    identically.

    ``block > 1`` deals contiguous runs of ``block`` faults round-robin
    instead of single faults, so a worker whose simulator batches B
    faults per wide-engine plan walk receives whole batches (blocks
    aligned to its batch size) rather than an interleaved sample.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    faults = list(faults)
    if block == 1:
        return [faults[i::n_shards] for i in range(n_shards)]
    shards: List[List[StuckFault]] = [[] for _ in range(n_shards)]
    for j in range(0, len(faults), block):
        shards[(j // block) % n_shards].extend(faults[j:j + block])
    return shards


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _shard_detect(sim: FaultSimulator, faults: Sequence[StuckFault],
                  payload: Tuple, drop: bool) -> Dict[StuckFault, int]:
    """Run one request's fault simulation on the worker's simulator."""
    kind = payload[0]
    if kind == "words":
        result = sim.simulate_stuck_packed(
            faults, payload[1], payload[2], drop_detected=drop
        )
    elif kind == "patterns":
        result = sim.simulate_stuck(faults, payload[1], drop_detected=drop)
    elif kind == "pairs":
        result = sim.simulate_transition(faults, payload[1],
                                         drop_detected=drop)
    else:
        raise SimulationError(f"unknown payload kind {kind!r}")
    return result.detected


class _WorkerSession:
    """One worker's state machine (runs inside the worker process).

    Protocol (parent -> worker):
      ``("sim", req_id, faults, payload, drop)``   one-shot shard
      ``("load", faults)``                         set the session shard
      ``("drop", faults)``                         retire faults dropped
                                                   elsewhere (cross-shard
                                                   exchange)
      ``("round", req_id, payload, drop)``         simulate the session
                                                   shard's active faults
      ``("guide", ghash, scores)``                 install SCOAP guidance
                                                   (no reply; idempotent
                                                   per content hash)
      ``("podem", req_id, fault, policy)``         run one PODEM search
      ``("cancel", req_id)``                       abandon that search
      ``("ping", req_id)``                         sync barrier: replies
                                                   once everything before
                                                   it has been handled
      ``("die",)``                                 crash on purpose (test
                                                   hook for the respawn
                                                   path)
      ``("stop",)``                                shut down

    Replies (worker -> parent): ``("ready", worker_id)`` once after
    compile, then ``("ok", req_id, result, n_active)`` or
    ``("err", req_id, exc_type, message)`` per request that carries a
    ``req_id``.  Request handling errors are *caught and shipped*,
    never allowed to kill the worker: the parent always gets a reply
    per request.

    A PODEM search runs in bounded slices
    (:class:`~repro.fault.podem.PodemSearch`); between slices the
    worker drains its pipe, so a ``cancel`` lands promptly (the search
    replies ``{"status": "cancelled"}``) and interleaved
    ``sim``/``round``/``drop``/``load``/``guide`` requests are served
    mid-search.  A nested ``podem`` while one is active is a protocol
    error (the parent keeps at most one search in flight per worker).
    """

    def __init__(self, conn, worker_id: int, netlist: Netlist,
                 sim: FaultSimulator):
        self.conn = conn
        self.worker_id = worker_id
        self.netlist = netlist
        self.sim = sim
        self.active: List[StuckFault] = []
        self.guidance = None
        self.guidance_hash: Optional[str] = None
        self.stopping = False
        self._engines: Dict[bool, Podem] = {}
        self._searching = False

    def engine(self, guided: bool) -> Podem:
        """The worker's PODEM engine (guided engines rebuild whenever
        new guidance arrives; the unguided engine lives forever)."""
        eng = self._engines.get(guided)
        if eng is None:
            eng = Podem(self.netlist,
                        guidance=self.guidance if guided else None)
            self._engines[guided] = eng
        return eng

    def handle(self, msg: Tuple) -> None:
        """Dispatch one parent request (including mid-search nesting)."""
        kind = msg[0]
        if kind == "stop":
            self.stopping = True
            return
        if kind == "die":
            # Test hook: vanish without replying or cleaning up, the
            # way an OOM kill would.
            os._exit(_DIE_EXIT_CODE)
        req_id = -1
        try:
            if kind == "load":
                self.active = list(msg[1])
            elif kind == "drop":
                retired = set(msg[1])
                self.active = [f for f in self.active if f not in retired]
            elif kind == "guide":
                _, ghash, scores = msg
                if ghash != self.guidance_hash:
                    self.guidance = scores
                    self.guidance_hash = ghash
                    self._engines.pop(True, None)
            elif kind == "cancel":
                # A cancel for a search that already replied: stale,
                # nothing to revoke.
                pass
            elif kind == "sim":
                _, req_id, faults, payload, drop = msg
                detected = _shard_detect(self.sim, faults, payload, drop)
                self.conn.send(("ok", req_id, detected, len(self.active)))
            elif kind == "round":
                _, req_id, payload, drop = msg
                detected = _shard_detect(self.sim, self.active, payload,
                                         drop)
                hits = {f: m for f, m in detected.items() if m}
                if drop:
                    self.active = [f for f in self.active if f not in hits]
                self.conn.send(("ok", req_id, hits, len(self.active)))
            elif kind == "ping":
                # Pipes are FIFO, so this reply proves every earlier
                # request has been fully handled -- the parent's
                # session-reset barrier.
                req_id = msg[1]
                self.conn.send(("ok", req_id, None, len(self.active)))
            elif kind == "podem":
                req_id = msg[1]
                self._podem(msg)
            else:
                self.conn.send(("err", -1, "SimulationError",
                                f"unknown request {kind!r}"))
        except Exception as exc:  # structured per-request error
            self.conn.send(("err", req_id, type(exc).__name__, str(exc)))

    def _podem(self, msg: Tuple) -> None:
        _, req_id, fault, policy = msg
        if self._searching:
            raise SimulationError(
                "podem request while a search is active"
            )
        engine = self.engine(bool(policy["guided"]))
        search = engine.search(
            fault, backtrack_limit=policy["backtrack_limit"]
        )
        slice_iters = int(policy.get("slice") or DEFAULT_SEARCH_SLICE)
        self._searching = True
        try:
            while True:
                result = search.step(slice_iters)
                if result is not None:
                    self.conn.send(("ok", req_id, {
                        "status": result.status,
                        "test": result.test,
                        "backtracks": result.backtracks,
                        "cube": result.cube,
                        "policy": policy["name"],
                    }, len(self.active)))
                    return
                # Slice exhausted: stay responsive between slices.
                while self.conn.poll(0):
                    nested = self.conn.recv()
                    if nested[0] == "cancel":
                        if nested[1] == req_id:
                            self.conn.send(("ok", req_id, {
                                "status": "cancelled",
                                "test": None,
                                "backtracks": search.backtracks,
                                "cube": None,
                                "policy": policy["name"],
                            }, len(self.active)))
                            return
                        continue  # stale cancel for an earlier search
                    self.handle(nested)
                    if self.stopping:
                        return
        finally:
            self._searching = False


def _worker_main(conn, worker_id: int, netlist_data: Dict,
                 backend: str = BACKEND_INT,
                 batch_faults=BATCH_AUTO) -> None:
    """Worker entry: compile once, then stream requests forever.

    See :class:`_WorkerSession` for the message protocol.
    """
    try:
        netlist = from_dict(netlist_data)
        # compile_netlist inside: memory tier (inherited on fork),
        # then the shared disk tier, then a local compile.
        sim = FaultSimulator(netlist, backend=backend,
                             batch_faults=batch_faults)
        conn.send(("ready", worker_id))
    except BaseException as exc:  # noqa: BLE001 -- must report, not die silently
        try:
            conn.send(("err", -1, type(exc).__name__, str(exc)))
        except Exception as send_exc:
            # The parent's pipe end is gone too: the startup error
            # cannot be reported, only recorded (worker-process-local).
            _record_swallowed("worker.err_report", send_exc)
        conn.close()
        return
    session = _WorkerSession(conn, worker_id, netlist, sim)
    try:
        while not session.stopping:
            session.handle(conn.recv())
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ShardedFaultSimulator:
    """Fault-parallel stuck-at simulation facade over a worker pool.

    ``processes=1`` runs everything inline on a private
    :class:`~repro.fault.fsim.FaultSimulator` -- no fork, identical
    semantics -- so callers can thread a single code path through both
    configurations.  With ``processes=N`` the pool must be started
    (:meth:`start`, or use the instance as a context manager) before
    simulating, and closed when done.

    One-shot API: :meth:`simulate_stuck` / :meth:`simulate_stuck_packed`
    mirror the serial :class:`~repro.fault.fsim.FaultSimulator` exactly
    (same ``FaultSimResult``, same per-fault masks, same fault order).

    Session API (multi-round fault dropping): :meth:`load_faults` once,
    then :meth:`round_packed` / :meth:`round_patterns` per pattern
    batch -- each returns the newly detected ``{fault: mask}`` and, in
    drop mode, retires them everywhere -- plus :meth:`drop_faults` to
    retire faults resolved outside the simulator (a PODEM-detected
    target, an untestability proof).

    ``backend`` selects each worker's evaluation engine (see
    :mod:`repro.fault.backends`): wide pattern words *within* a worker
    compose with fault shards *across* workers.  Both backends merge
    bit-identically, so the choice never changes results.

    ``batch_faults`` is forwarded to each worker's simulator, and the
    fan-out deals faults to workers in whole blocks of that size
    (``shard_faults(..., block=...)``) so every worker-side wide-engine
    batch is a contiguous run of the submitted fault list instead of a
    round-robin sample.  Like the backend, it never changes results.
    """

    def __init__(self, netlist: Netlist, processes: int = 1,
                 request_timeout: Optional[float] = None,
                 backend: str = BACKEND_AUTO,
                 batch_faults=BATCH_AUTO):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.netlist = netlist
        self.processes = processes
        self.request_timeout = request_timeout
        self.backend = backend
        self.batch_faults = resolve_batch_faults(batch_faults)
        self._workers: List[Tuple] = []       # (proc, conn) per shard
        self._serial: Optional[FaultSimulator] = None
        self._req_ids = itertools.count()
        self._active: List[StuckFault] = []   # session faults, in order
        self._started = False
        # Per-worker mailbox of out-of-order replies (req_id -> msg):
        # a speculative PODEM completion can arrive while the parent is
        # collecting a fault-sim round, and vice versa.
        self._stash: List[Dict[int, Tuple]] = []
        # Workers observed dead by a recv EOF/reset: ``proc.is_alive``
        # can lag a worker's ``os._exit`` by a beat, so the EOF
        # sighting itself is recorded as proof of death.
        self._confirmed_dead: set = set()
        # Per-worker content hash of the installed SCOAP guidance.
        self._guidance_hash: List[Optional[str]] = []
        # Kept for worker respawn (recover_workers).
        self._ctx = None
        self._netlist_data: Optional[Dict] = None

    def _shard_block(self) -> int:
        """Block size for dealing faults to workers: the worker-side
        wide-engine batch size at nominal (one-word) pattern width,
        estimated from cheap netlist stats -- the parent never compiles
        just to shard.  1 (plain round-robin) when batching is off."""
        return select_batch_faults(self.batch_faults, 64,
                                   len(self.netlist))

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ShardedFaultSimulator":
        """Fork the pool (idempotent); workers compile before returning."""
        if self._started:
            return self
        # Fail fast in the parent on an unsatisfiable backend request
        # (e.g. explicit "numpy" without numpy) or a garbage batch knob
        # instead of shipping the failure to every worker.
        resolve_backend(self.backend)
        resolve_batch_faults(self.batch_faults)
        if self.processes == 1:
            self._serial = FaultSimulator(self.netlist,
                                          backend=self.backend,
                                          batch_faults=self.batch_faults)
            self._started = True
            return self
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork: netlist dict pickles
            ctx = multiprocessing.get_context()
        rec = get_recorder()
        data = to_dict(self.netlist)
        self._ctx = ctx
        self._netlist_data = data
        self._stash = [dict() for _ in range(self.processes)]
        self._confirmed_dead = set()
        self._guidance_hash = [None] * self.processes
        try:
            with rec.span("pool.start", cat="pool",
                          circuit=self.netlist.name,
                          processes=self.processes):
                for worker_id in range(self.processes):
                    parent_conn, child_conn = ctx.Pipe(duplex=True)
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(child_conn, worker_id, data, self.backend,
                              self.batch_faults),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    self._workers.append((proc, parent_conn))
                    rec.event("pool.worker_forked", cat="pool",
                              worker=worker_id, worker_pid=proc.pid)
                for worker_id in range(self.processes):
                    msg = self._recv(worker_id, timeout=READY_TIMEOUT)
                    if msg[0] != "ready":
                        raise SimulationError(
                            f"shard worker {worker_id} failed to start: "
                            f"{msg[2]}: {msg[3]}" if msg[0] == "err"
                            else f"shard worker {worker_id}: bad handshake "
                                 f"{msg[0]!r}"
                        )
                    rec.event("pool.worker_ready", cat="pool",
                              worker=worker_id)
        except BaseException:
            self.close()
            raise
        self._started = True
        return self

    def close(self) -> None:
        """Stop every worker: polite message, then bounded escalation.

        Pipe failures on the way down are expected (a worker may have
        died first) and deliberately swallowed -- but each one is
        recorded as a ``pool.swallowed_error`` warning, so shutdown
        stays quiet without being invisible.
        """
        workers, self._workers = self._workers, []
        self._serial = None
        self._started = False
        self._stash = []
        self._confirmed_dead = set()
        self._guidance_hash = []
        rec = get_recorder()
        for worker_id, (proc, conn) in enumerate(workers):
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError) as exc:
                _record_swallowed(f"close.stop_send[{worker_id}]", exc)
        for worker_id, (proc, conn) in enumerate(workers):
            proc.join(timeout=_JOIN_GRACE)
            if proc.is_alive():
                rec.warning("pool.worker_terminated",
                            counter="pool.workers_terminated",
                            worker=worker_id)
                proc.terminate()
                proc.join(timeout=_JOIN_GRACE)
            if proc.is_alive():
                rec.warning("pool.worker_killed",
                            counter="pool.workers_killed",
                            worker=worker_id)
                proc.kill()
                proc.join()
            try:
                conn.close()
            except OSError as exc:
                _record_swallowed(f"close.conn_close[{worker_id}]", exc)
            rec.event("pool.worker_stopped", cat="pool",
                      worker=worker_id, exit_code=proc.exitcode)

    def __enter__(self) -> "ShardedFaultSimulator":
        return self.start()

    def __del__(self) -> None:  # best-effort backstop; daemon=True anyway
        try:
            if self._workers:
                self.close()
        except Exception as exc:
            try:
                _record_swallowed("del.close", exc)
            except Exception:
                # Interpreter teardown can have dismantled the
                # recorder module itself; at that point there is
                # nowhere left to record to.
                pass

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------
    def _ensure_started(self) -> None:
        if not self._started:
            raise SimulationError(
                "ShardedFaultSimulator not started (call start() or use "
                "it as a context manager)"
            )

    def _send(self, worker_id: int, msg: Tuple) -> None:
        proc, conn = self._workers[worker_id]
        if not proc.is_alive():
            raise SimulationError(
                f"shard worker {worker_id} died "
                f"(exit code {proc.exitcode})"
            )
        try:
            conn.send(msg)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise SimulationError(
                f"shard worker {worker_id}: send failed ({exc})"
            ) from exc

    def _recv(self, worker_id: int,
              timeout: Optional[float] = None) -> Tuple:
        proc, conn = self._workers[worker_id]
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        while True:
            if conn.poll(0.05):
                try:
                    return conn.recv()
                except (EOFError, OSError) as exc:
                    # EOF or ECONNRESET: the worker vanished (a killed
                    # process resets the socketpair).
                    self._confirmed_dead.add(worker_id)
                    raise SimulationError(
                        f"shard worker {worker_id} closed its pipe "
                        f"(exit code {proc.exitcode})"
                    ) from exc
            if not proc.is_alive() and not conn.poll(0.0):
                self._confirmed_dead.add(worker_id)
                raise SimulationError(
                    f"shard worker {worker_id} died "
                    f"(exit code {proc.exitcode})"
                )
            if deadline is not None and time.perf_counter() > deadline:
                raise SimulationError(
                    f"shard worker {worker_id}: no reply within "
                    f"{timeout:.1f}s"
                )

    def _recv_reply(self, worker_id: int, req_id: int,
                    timeout: Optional[float] = None) -> Tuple:
        """Receive the reply to ``req_id``, stashing out-of-order ones.

        With speculative PODEM searches in flight, a worker's pipe can
        interleave completions for different requests; replies that
        answer a *different* request are parked in the per-worker
        mailbox and re-delivered when that request is awaited, so the
        fault-sim collect path and the PODEM poll path never
        desynchronize each other.
        """
        stash = self._stash[worker_id]
        if req_id in stash:
            return stash.pop(req_id)
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        while True:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.perf_counter()))
            msg = self._recv(worker_id, timeout=remaining)
            if (msg[0] in ("ok", "err") and msg[1] != req_id
                    and msg[1] != -1):
                stash[msg[1]] = msg
                continue
            return msg

    def _collect(self, requests: List[Tuple[int, int]],
                 ) -> List[Dict[StuckFault, int]]:
        """Gather one reply per outstanding request, in worker order.

        Every reply is drained before any error is raised, so a failed
        shard (a structured ``err`` record) never leaves stragglers in
        a pipe to desynchronize the next request -- the pool stays
        usable after the raise.
        """
        rec = get_recorder()
        replies: List[Optional[Dict[StuckFault, int]]] = []
        errors: List[str] = []
        for worker_id, req_id in requests:
            wait_start = rec.now_us() if rec.enabled else 0.0
            try:
                msg = self._recv_reply(worker_id, req_id,
                                       timeout=self.request_timeout)
            except SimulationError as exc:
                rec.warning("pool.shard_error",
                            counter="pool.shard_errors",
                            worker=worker_id, detail=str(exc))
                errors.append(str(exc))
                replies.append(None)
                continue
            if rec.enabled:
                rec.complete_event(
                    "pool.shard_reply", wait_start,
                    rec.now_us() - wait_start, cat="pool",
                    worker=worker_id, req_id=req_id, kind=msg[0],
                )
            if msg[0] == "ok" and msg[1] == req_id:
                replies.append(msg[2])
            elif msg[0] == "err":
                rec.warning("pool.shard_error",
                            counter="pool.shard_errors",
                            worker=worker_id, exc_type=msg[2],
                            detail=msg[3])
                errors.append(
                    f"shard {worker_id} [{msg[2]}]: {msg[3]}"
                )
                replies.append(None)
            else:
                errors.append(
                    f"shard {worker_id}: protocol desync "
                    f"(got {msg[0]!r}, req {msg[1]!r} != {req_id})"
                )
                replies.append(None)
        if errors:
            raise SimulationError("; ".join(errors))
        return replies  # type: ignore[return-value]

    def _fanout(self, shards: List[List[StuckFault]], payload: Tuple,
                drop: bool) -> Dict[StuckFault, int]:
        """One-shot fan-out: per-shard ``sim`` requests, merged masks."""
        with get_recorder().span("pool.fanout", cat="pool",
                                 kind=payload[0], drop=drop,
                                 n_shards=len(shards)):
            requests: List[Tuple[int, int]] = []
            for worker_id, shard in enumerate(shards):
                req_id = next(self._req_ids)
                self._send(worker_id,
                           ("sim", req_id, shard, payload, drop))
                requests.append((worker_id, req_id))
            merged: Dict[StuckFault, int] = {}
            for detected in self._collect(requests):
                merged.update(detected)
            return merged

    # -- one-shot API --------------------------------------------------
    def simulate_stuck(self, faults: Sequence[StuckFault],
                       patterns: Sequence[Mapping[str, int]],
                       drop_detected: bool = False) -> FaultSimResult:
        """Sharded :meth:`~repro.fault.fsim.FaultSimulator.simulate_stuck`.

        The result is identical to the serial call -- same masks, with
        faults listed in submission order (fault-order-stable merge).
        """
        self._ensure_started()
        faults = list(faults)
        patterns = list(patterns)
        if self._serial is not None:
            return self._serial.simulate_stuck(faults, patterns,
                                               drop_detected)
        merged = self._fanout(shard_faults(faults, len(self._workers),
                                           self._shard_block()),
                              ("patterns", patterns), drop_detected)
        return FaultSimResult(
            detected={f: merged[f] for f in faults},
            n_patterns=len(patterns),
        )

    def simulate_stuck_packed(self, faults: Sequence[StuckFault],
                              words: Mapping[str, int], n_patterns: int,
                              drop_detected: bool = False,
                              ) -> FaultSimResult:
        """Sharded simulate from pre-packed per-net input words."""
        self._ensure_started()
        faults = list(faults)
        if self._serial is not None:
            return self._serial.simulate_stuck_packed(
                faults, words, n_patterns, drop_detected
            )
        merged = self._fanout(shard_faults(faults, len(self._workers),
                                           self._shard_block()),
                              ("words", dict(words), n_patterns),
                              drop_detected)
        return FaultSimResult(
            detected={f: merged[f] for f in faults},
            n_patterns=n_patterns,
        )

    def simulate_transition(self, faults, pairs,
                            drop_detected: bool = False) -> FaultSimResult:
        """Sharded :meth:`~repro.fault.fsim.FaultSimulator.simulate_transition`.

        Transition faults shard exactly like stuck-at faults (each
        fault's launch/capture masks depend only on the good machines
        and its own cone); workers receive the (V1, V2) pair list once
        per call and the merge is fault-order-stable, so sharded and
        serial runs are interchangeable bit for bit.
        """
        self._ensure_started()
        faults = list(faults)
        pairs = list(pairs)
        if self._serial is not None:
            return self._serial.simulate_transition(faults, pairs,
                                                    drop_detected)
        merged = self._fanout(shard_faults(faults, len(self._workers),
                                           self._shard_block()),
                              ("pairs", pairs), drop_detected)
        return FaultSimResult(
            detected={f: merged[f] for f in faults},
            n_patterns=len(pairs),
        )

    # -- session API (multi-round fault dropping) ----------------------
    @property
    def n_active(self) -> int:
        """Faults still active in the loaded session."""
        return len(self._active)

    @property
    def active_faults(self) -> List[StuckFault]:
        """The session's active faults, in load order (a copy)."""
        return list(self._active)

    def load_faults(self, faults: Sequence[StuckFault]) -> None:
        """Load (or replace) the session fault list, sharded across
        workers; subsequent rounds simulate only the active remainder."""
        self._ensure_started()
        self._active = list(faults)
        if self._serial is not None:
            return
        self._reload_shards()

    def _reload_shards(self) -> None:
        """(Re-)deal the parent's active list to every worker.

        Safe at any time -- per-fault masks are shard-independent, so
        re-sharding the same active set merely rebalances work.  The
        respawn path relies on this: after a worker restart, one
        re-deal restores exactly the state a fresh pool would have.
        """
        for worker_id, shard in enumerate(
                shard_faults(self._active, len(self._workers),
                             self._shard_block())):
            self._send(worker_id, ("load", shard))

    def drop_faults(self, faults: Sequence[StuckFault]) -> None:
        """Retire faults resolved outside the simulator (cross-shard
        dropped-fault exchange): removed from the parent's active list
        and broadcast so every shard converges on the same remainder."""
        self._ensure_started()
        retired = set(faults)
        if not retired:
            return
        self._active = [f for f in self._active if f not in retired]
        if self._serial is not None:
            return
        for worker_id in range(len(self._workers)):
            self._send(worker_id, ("drop", sorted(retired)))

    # -- PODEM generation sessions (parallel-ATPG coordinator API) -----
    def ensure_guidance(self, guidance, ghash: str) -> None:
        """Ship SCOAP guidance to every worker at most once per hash.

        The content-hash handshake makes guidance delivery idempotent:
        a worker already holding ``ghash`` is skipped (bumping
        ``pool.guidance_skips``), so in steady state the re-send count
        is zero -- ``pool.guidance_sends`` grows only at session start
        and after a worker respawn.  Serial mode is a no-op (the flow's
        own engines already hold the guidance).
        """
        self._ensure_started()
        if self._serial is not None:
            return
        rec = get_recorder()
        for worker_id in range(len(self._workers)):
            if self._guidance_hash[worker_id] == ghash:
                rec.incr("pool.guidance_skips")
                continue
            self._send(worker_id, ("guide", ghash, guidance))
            self._guidance_hash[worker_id] = ghash
            rec.incr("pool.guidance_sends")

    def podem_submit(self, worker_id: int, fault: StuckFault,
                     policy: Mapping[str, object]) -> int:
        """Start one speculative PODEM search on a worker.

        ``policy`` is the wire form of a
        :class:`~repro.fault.podem.PodemPolicy`
        (:meth:`~repro.fault.podem.PodemPolicy.to_wire`).  Returns the
        request id to pass to :meth:`podem_poll` /
        :meth:`podem_cancel`.  At most one search may be in flight per
        worker -- the worker rejects nested submissions.
        """
        self._ensure_started()
        req_id = next(self._req_ids)
        self._send(worker_id, ("podem", req_id, fault, dict(policy)))
        return req_id

    def podem_cancel(self, worker_id: int, req_id: int) -> None:
        """Ask a worker to abandon a search (it replies "cancelled").

        Send failures are swallowed-but-recorded: a dead worker cannot
        be cancelled, and the respawn path owns that case.
        """
        self._ensure_started()
        try:
            self._send(worker_id, ("cancel", req_id))
        except SimulationError as exc:
            _record_swallowed(f"podem_cancel[{worker_id}]", exc)

    def podem_poll(self, pending: Mapping[int, int],
                   timeout: Optional[float] = 0.05,
                   ) -> Tuple[List[Tuple[int, int, Tuple]], List[int]]:
        """Poll outstanding PODEM requests (``req_id -> worker_id``).

        Returns ``(done, dead)``: ``done`` lists ``(worker_id, req_id,
        reply)`` completions -- stashed replies first, then whatever
        arrived within ``timeout`` -- and ``dead`` lists workers found
        dead without having replied (their requests are lost; the
        caller re-queues the faults and calls :meth:`recover_workers`).
        Both may be empty when nothing happened within the timeout.
        """
        self._ensure_started()
        done: List[Tuple[int, int, Tuple]] = []
        dead: List[int] = []
        for req_id, worker_id in pending.items():
            msg = self._stash[worker_id].pop(req_id, None)
            if msg is not None:
                done.append((worker_id, req_id, msg))
        if done or not pending:
            return done, dead
        worker_ids = sorted(set(pending.values()))
        conns = {self._workers[w][1]: w for w in worker_ids}
        for conn in _wait_connections(list(conns), timeout):
            worker_id = conns[conn]
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self._confirmed_dead.add(worker_id)
                dead.append(worker_id)
                continue
            if msg[0] in ("ok", "err") and msg[1] != -1:
                req_id = msg[1]
                if pending.get(req_id) == worker_id:
                    done.append((worker_id, req_id, msg))
                else:
                    self._stash[worker_id][req_id] = msg
        for worker_id in worker_ids:
            proc, conn = self._workers[worker_id]
            if (worker_id not in dead and not proc.is_alive()
                    and not conn.poll(0)):
                self._confirmed_dead.add(worker_id)
                dead.append(worker_id)
        return done, sorted(set(dead))

    def dead_workers(self) -> List[int]:
        """Ids of workers whose process has exited (serial mode: none)."""
        if self._serial is not None or not self._started:
            return []
        # Include workers whose death was witnessed as a recv EOF:
        # ``is_alive`` can briefly stay True after the child's
        # ``os._exit`` closed its end of the pipe.
        dead = set(self._confirmed_dead)
        dead.update(worker_id
                    for worker_id, (proc, _conn) in enumerate(self._workers)
                    if not proc.is_alive())
        return sorted(dead)

    def restart_worker(self, worker_id: int) -> None:
        """Respawn one worker in place and re-deal the session shards.

        The replacement compiles from the same netlist payload and
        handshakes exactly like a fresh start; its mailbox and
        guidance hash reset (in-flight requests on the dead worker are
        lost -- the coordinator re-queues them).  Because per-fault
        masks are shard-independent, re-dealing the parent's current
        active list to *all* workers afterwards restores exactly the
        state a fresh pool would hold, so determinism is unaffected.
        """
        self._ensure_started()
        if self._serial is not None:
            return
        rec = get_recorder()
        proc, conn = self._workers[worker_id]
        try:
            conn.close()
        except OSError as exc:
            _record_swallowed(f"restart.conn_close[{worker_id}]", exc)
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=_JOIN_GRACE)
        if proc.is_alive():
            proc.kill()
            proc.join()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        new_proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, self._netlist_data,
                  self.backend, self.batch_faults),
            daemon=True,
        )
        new_proc.start()
        child_conn.close()
        self._workers[worker_id] = (new_proc, parent_conn)
        self._stash[worker_id] = {}
        self._confirmed_dead.discard(worker_id)
        self._guidance_hash[worker_id] = None
        msg = self._recv(worker_id, timeout=READY_TIMEOUT)
        if msg[0] != "ready":
            raise SimulationError(
                f"shard worker {worker_id} failed to restart: "
                f"{msg[2]}: {msg[3]}" if msg[0] == "err"
                else f"shard worker {worker_id}: bad restart handshake "
                     f"{msg[0]!r}"
            )
        rec.warning("pool.worker_restarted",
                    counter="pool.worker_restarts", worker=worker_id)
        self._reload_shards()

    def recover_workers(self) -> List[int]:
        """Restart every dead worker; returns the restarted ids."""
        restarted = []
        for worker_id in self.dead_workers():
            self.restart_worker(worker_id)
            restarted.append(worker_id)
        return restarted

    # -- job boundaries (daemon / multi-job reuse) ---------------------
    @property
    def swallowed_errors(self) -> int:
        """Deliberately-swallowed error count recorded so far.

        Reads the active recorder's ``pool.swallowed_errors`` counter;
        the serve layer's drain contract requires this to be 0 before a
        warm pool may be handed to the next job.
        """
        return get_recorder().counter("pool.swallowed_errors")

    def reset_session(self) -> None:
        """Restore the warm pool to fresh-start-equivalent state.

        The job boundary for pool reuse across ATPG runs (the serve
        daemon's warm-pool contract):

        1. respawn any dead workers (a respawn alone re-handshakes and
           clears that worker's guidance/mailbox);
        2. clear the session fault list everywhere (``load []``);
        3. run a **ping barrier** per worker -- pipes are FIFO, so the
           ping reply proves every earlier request (including a
           cancelled speculative PODEM search's final reply) has been
           handled and answered;
        4. drop any stale stashed replies from the finished job.

        After this, the only state distinguishing the pool from a
        freshly started one is the installed SCOAP guidance -- which is
        content-hash keyed and idempotent (:meth:`ensure_guidance`), so
        it cannot leak between netlists or alter results.  That is the
        determinism argument for warm reuse: a job run on a reset pool
        is bit-identical to the same job on a cold pool.
        """
        self._ensure_started()
        self._active = []
        if self._serial is not None:
            return
        self.recover_workers()
        barriers: List[Tuple[int, int]] = []
        for worker_id in range(len(self._workers)):
            self._send(worker_id, ("load", []))
            req_id = next(self._req_ids)
            self._send(worker_id, ("ping", req_id))
            barriers.append((worker_id, req_id))
        for worker_id, req_id in barriers:
            # _recv_reply stashes any straggler replies from the
            # previous job that are still in flight ahead of the ping.
            msg = self._recv_reply(worker_id, req_id,
                                   timeout=self.request_timeout)
            if msg[0] != "ok" or msg[1] != req_id:
                raise SimulationError(
                    f"shard worker {worker_id}: reset barrier desync "
                    f"(got {msg[0]!r}, req {msg[1]!r} != {req_id})"
                )
        # Everything the previous job had in flight has now replied;
        # whatever landed in the mailboxes belongs to no live request.
        for stash in self._stash:
            stash.clear()
        get_recorder().event("pool.session_reset", cat="pool",
                             circuit=self.netlist.name,
                             processes=self.processes)

    def _round(self, payload: Tuple, drop: bool) -> Dict[StuckFault, int]:
        rec = get_recorder()
        with rec.span("pool.round", cat="pool", kind=payload[0],
                      n_active=len(self._active), drop=drop,
                      processes=self.processes):
            if self._serial is not None:
                detected = _shard_detect(self._serial, self._active,
                                         payload, drop)
                hits = {f: m for f, m in detected.items() if m}
            else:
                requests: List[Tuple[int, int]] = []
                for worker_id in range(len(self._workers)):
                    req_id = next(self._req_ids)
                    self._send(worker_id,
                               ("round", req_id, payload, drop))
                    requests.append((worker_id, req_id))
                merged: Dict[StuckFault, int] = {}
                for reply in self._collect(requests):
                    merged.update(reply)
                # Fault-order-stable view of this round's detections.
                hits = {f: merged[f] for f in self._active if f in merged}
            if drop:
                self._active = [f for f in self._active if f not in hits]
        return hits

    def round_packed(self, words: Mapping[str, int], n_patterns: int,
                     drop: bool = True) -> Dict[StuckFault, int]:
        """Simulate one packed-word batch against the active session
        faults; returns the newly detected ``{fault: mask}`` (active
        order) and, in drop mode, retires them from every shard."""
        self._ensure_started()
        return self._round(("words", dict(words), n_patterns), drop)

    def round_patterns(self, patterns: Sequence[Mapping[str, int]],
                       drop: bool = True) -> Dict[StuckFault, int]:
        """Like :meth:`round_packed`, from per-pattern dict vectors."""
        self._ensure_started()
        return self._round(("patterns", list(patterns)), drop)


# ----------------------------------------------------------------------
# CLI: python -m repro fsim
# ----------------------------------------------------------------------
def fsim_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro fsim`` -- (sharded) stuck-at fault simulation.

    The CI smoke surface: ``--check-serial`` asserts the sharded run's
    detection masks are bit-identical to a serial run, and ``--json``
    emits per-circuit records including compile-cache statistics so a
    cold-vs-warm pair of runs can assert the disk tier was hit.
    """
    import argparse
    import json as _json

    from ..bench import load_circuit
    from ..netlist import compile_cache_info
    from ..obs import add_trace_argument, trace_session
    from .collapse import collapse_stuck
    from .fsim import random_pattern_words
    from .models import all_stuck_faults

    parser = argparse.ArgumentParser(
        prog="repro fsim",
        description="Bit-parallel stuck-at fault simulation, optionally "
                    "sharded fault-parallel across a worker pool.",
    )
    parser.add_argument("circuits", nargs="*", default=["s5378"],
                        help="catalog circuit names (default: s5378)")
    parser.add_argument("--processes", type=int, default=1,
                        help="worker processes (1 = serial in-process)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "int", "numpy"],
                        help="simulation backend: packed-int kernels, "
                             "numpy wide-batch engine, or auto "
                             "(numpy for multi-word batches when "
                             "importable; default)")
    parser.add_argument("--batch-faults", default="auto",
                        help="faults per wide-engine plan walk: 'auto' "
                             "(sized from circuit stats; default), or a "
                             "positive integer (1 = per-fault)")
    parser.add_argument("--patterns", type=int, default=64,
                        help="random patterns to simulate (default 64)")
    parser.add_argument("--max-faults", type=int, default=None,
                        help="cap the collapsed fault list at the first "
                             "N faults (smoke runs on stress circuits)")
    parser.add_argument("--seed", type=int, default=7,
                        help="pattern RNG seed (default 7)")
    parser.add_argument("--drop", action="store_true",
                        help="drop-mode (early-exit) masks")
    parser.add_argument("--check-serial", action="store_true",
                        help="also run serially and fail unless the "
                             "masks are bit-identical")
    parser.add_argument("--json", action="store_true",
                        help="one JSON record per circuit (includes "
                             "compile-cache statistics)")
    add_trace_argument(parser)
    args = parser.parse_args(argv)
    try:
        resolve_batch_faults(args.batch_faults)
    except SimulationError as exc:
        parser.error(str(exc))

    status = 0
    manifest_extra: Dict[str, object] = {"seed": args.seed,
                                         "circuits": {}}
    with trace_session(args.trace, "fsim", argv=list(argv or []),
                       extra=manifest_extra):
        for name in args.circuits:
            netlist = load_circuit(name)
            faults = collapse_stuck(netlist, all_stuck_faults(netlist))
            if args.max_faults is not None:
                faults = faults[:args.max_faults]
            words = random_pattern_words(netlist, args.patterns,
                                         args.seed)
            start = time.perf_counter()
            with ShardedFaultSimulator(netlist, args.processes,
                                       backend=args.backend,
                                       batch_faults=args.batch_faults,
                                       ) as pool:
                result = pool.simulate_stuck_packed(
                    faults, words, args.patterns, drop_detected=args.drop
                )
            seconds = time.perf_counter() - start
            record = {
                "circuit": name,
                "processes": args.processes,
                "backend": args.backend,
                "batch_faults": args.batch_faults,
                "n_faults": len(faults),
                "n_patterns": args.patterns,
                "drop": args.drop,
                "coverage": result.coverage,
                "seconds": seconds,
            }
            if args.check_serial:
                # Pinned to the per-fault integer kernels so the check
                # stays a genuine cross-backend comparison whatever the
                # pool ran.
                serial = FaultSimulator(
                    netlist, backend=BACKEND_INT,
                ).simulate_stuck_packed(
                    faults, words, args.patterns, drop_detected=args.drop
                )
                identical = serial.detected == result.detected
                record["identical_masks"] = identical
                if not identical:
                    status = 1
            record["compile_cache"] = compile_cache_info()
            manifest_extra["circuits"][name] = {
                k: v for k, v in record.items() if k != "compile_cache"
            }
            if args.json:
                print(_json.dumps(record, sort_keys=True))
            else:
                extra = ""
                if "identical_masks" in record:
                    extra = (" | masks identical to serial"
                             if record["identical_masks"]
                             else " | MASK MISMATCH vs serial")
                print(f"{name}: coverage {result.coverage:.4f} over "
                      f"{len(faults)} faults / {args.patterns} patterns, "
                      f"{args.processes} process(es), "
                      f"{seconds:.3f}s{extra}")
    return status
