"""Test quality against variation-induced delay defects.

The paper's opening argument: process fluctuation makes marginal delay
defects likely, so manufacturing test must include two-pattern delay
tests.  This module closes the loop: it samples "slow nets" (gates hit
by a gross variation-induced slowdown), then measures which share of
those defects a given two-pattern test set catches under each
application style.  A gross delay defect at a net is caught by a pair
iff the pair launches the corresponding transition at the net and
propagates it to an observation point -- the transition-fault detection
condition, evaluated with the bit-parallel fault simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..errors import SimulationError
from ..netlist import Netlist
from .fsim import FaultSimulator
from .models import FALL, RISE, TransitionFault
from .transition import TwoPatternTest


@dataclass(frozen=True)
class EscapeReport:
    """Delay-defect escape study for one test set."""

    label: str
    n_defects: int
    caught: int

    @property
    def escape_rate(self) -> float:
        """Fraction of sampled delay defects the test set misses."""
        if self.n_defects == 0:
            return 0.0
        return 1.0 - self.caught / self.n_defects


def sample_delay_defects(netlist: Netlist, n_defects: int = 50,
                         seed: int = 2005) -> List[TransitionFault]:
    """Sample variation-induced gross delay defects as transition faults.

    Each defect is a slow-to-rise or slow-to-fall at a random
    combinational net -- the footprint of a gate whose device corner
    came out slow enough to miss the rated clock.

    Raises :class:`~repro.errors.SimulationError` when the netlist has
    no combinational gates to sample from (an FF-only or input-only
    circuit cannot host a gate delay defect).
    """
    rng = random.Random(seed)
    nets = [g.name for g in netlist.combinational_gates()]
    if n_defects <= 0:
        return []
    if not nets:
        raise SimulationError(
            f"cannot sample delay defects: netlist {netlist.name!r} "
            "has no combinational gates"
        )
    defects: List[TransitionFault] = []
    for _ in range(n_defects):
        net = rng.choice(nets)
        direction = RISE if rng.random() < 0.5 else FALL
        defects.append(TransitionFault(net, direction))
    return defects


def escape_study(netlist: Netlist,
                 test_sets: Mapping[str, Sequence[TwoPatternTest]],
                 n_defects: int = 50, seed: int = 2005,
                 backend: str = "auto", batch_faults="auto",
                 ) -> Dict[str, EscapeReport]:
    """Escape rate of each labelled test set over one defect sample.

    All test sets face the *same* defect population, so the comparison
    isolates the application style (the paper's argument for arbitrary
    two-pattern capability).  The simulation backend never changes the
    report.
    """
    defects = sample_delay_defects(netlist, n_defects, seed)
    sim = FaultSimulator(netlist, backend=backend,
                         batch_faults=batch_faults)
    reports: Dict[str, EscapeReport] = {}
    for label, tests in test_sets.items():
        if tests:
            result = sim.simulate_transition(
                defects, [(t.v1, t.v2) for t in tests]
            )
            caught = sum(1 for mask in result.detected.values() if mask)
        else:
            caught = 0
        reports[label] = EscapeReport(
            label=label, n_defects=len(defects), caught=caught
        )
    return reports
