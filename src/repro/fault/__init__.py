"""Fault models, fault simulation and test generation.

Public surface::

    from repro.fault import StuckFault, TransitionFault
    from repro.fault import all_stuck_faults, all_transition_faults
    from repro.fault import collapse_stuck, collapse_transition
    from repro.fault import FaultSimulator, Podem, TransitionAtpg
    from repro.fault import AtpgFlow, run_flow
    from repro.fault import available_backends, resolve_backend
"""

from .atpg_flow import (
    AtpgFlow,
    AtpgFlowConfig,
    AtpgFlowResult,
    flow_artifact,
    run_flow,
)
from .backends import (
    BACKEND_AUTO,
    BACKEND_INT,
    BACKEND_NUMPY,
    BATCH_AUTO,
    available_backends,
    numpy_available,
    resolve_backend,
    resolve_batch_faults,
    select_backend,
    select_batch_faults,
    wide_min_gates,
    wide_min_patterns,
)
from .collapse import (
    collapse_stuck,
    collapse_transition,
    dominance_collapse_stuck,
    dominance_collapse_transition,
)
from .fsim import (
    FaultSimResult,
    FaultSimulator,
    random_pattern_coverage,
    random_pattern_words,
)
from .models import (
    FALL,
    RISE,
    StuckFault,
    TransitionFault,
    all_stuck_faults,
    all_transition_faults,
)
from .broadside import BroadsideAtpg, unroll_two_frames
from .compaction import (
    CompactionResult,
    compact_two_pattern_tests,
    fill_cube,
    merge_test_cubes,
)
from .diagnosis import Candidate, diagnose, diagnose_defect, simulate_tester
from .pathdelay import (
    DelayPath,
    enumerate_critical_paths,
    nonrobust_test_ok,
    path_coverage,
    robust_test_ok,
)
from .podem import AtpgResult, Podem, eval3, generate_tests, justify
from .sharded import ShardedFaultSimulator, shard_faults
from .quality import EscapeReport, escape_study, sample_delay_defects
from .transition import (
    STYLE_ARBITRARY,
    STYLE_BROADSIDE,
    STYLE_PARTIAL,
    STYLE_SKEWED,
    TransitionAtpg,
    TransitionAtpgResult,
    TwoPatternTest,
    compare_styles,
)

__all__ = [
    "BACKEND_AUTO",
    "BACKEND_INT",
    "BACKEND_NUMPY",
    "BATCH_AUTO",
    "available_backends",
    "numpy_available",
    "resolve_backend",
    "resolve_batch_faults",
    "select_backend",
    "select_batch_faults",
    "wide_min_gates",
    "wide_min_patterns",
    "AtpgFlow",
    "AtpgFlowConfig",
    "AtpgFlowResult",
    "AtpgResult",
    "BroadsideAtpg",
    "Candidate",
    "FALL",
    "FaultSimResult",
    "FaultSimulator",
    "Podem",
    "RISE",
    "STYLE_ARBITRARY",
    "STYLE_BROADSIDE",
    "STYLE_PARTIAL",
    "STYLE_SKEWED",
    "ShardedFaultSimulator",
    "shard_faults",
    "CompactionResult",
    "DelayPath",
    "EscapeReport",
    "StuckFault",
    "TransitionAtpg",
    "TransitionAtpgResult",
    "TransitionFault",
    "TwoPatternTest",
    "all_stuck_faults",
    "all_transition_faults",
    "collapse_stuck",
    "collapse_transition",
    "dominance_collapse_stuck",
    "dominance_collapse_transition",
    "compact_two_pattern_tests",
    "compare_styles",
    "diagnose",
    "diagnose_defect",
    "enumerate_critical_paths",
    "escape_study",
    "eval3",
    "fill_cube",
    "flow_artifact",
    "generate_tests",
    "justify",
    "merge_test_cubes",
    "simulate_tester",
    "nonrobust_test_ok",
    "path_coverage",
    "random_pattern_coverage",
    "random_pattern_words",
    "robust_test_ok",
    "run_flow",
    "sample_delay_defects",
    "unroll_two_frames",
]
