"""Simulation backend registry: packed-int kernels vs numpy wide-batch.

Two interchangeable fault-simulation backends exist:

``"int"``
    The packed-Python-int kernels of :mod:`repro.netlist.compiled` --
    always available, best for narrow batches and small circuits.

``"numpy"``
    The multi-word wide-batch engine of :mod:`repro.netlist.wide` --
    contiguous uint64 arrays with changed-set pruning, best for wide
    pattern batches on large circuits.  Requires numpy.

Both are pinned bit-identical (masks, dict order, coverage) on every
catalog circuit, so selection is purely a performance decision.

``"auto"`` (the default for the command-line tools) selects the numpy
backend only when numpy is importable **and** the workload is in the
regime the wide engine measurably wins: the pattern batch spans more
than one 64-bit word and the circuit is larger than anything in the
catalog (changed-set pruning pays off with cone size; on catalog-sized
circuits at ATPG batch widths the integer kernels are at least as
fast).  Requesting ``"numpy"`` explicitly without numpy installed
raises :class:`~repro.errors.SimulationError`; everything else
degrades gracefully to ``"int"``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import SimulationError

BACKEND_AUTO = "auto"
BACKEND_INT = "int"
BACKEND_NUMPY = "numpy"

#: ``auto`` engages the wide backend only past one word of patterns.
WIDE_MIN_PATTERNS = 65

#: ... and only on circuits with at least this many evaluated gates.
#: Measured crossover: at 256-pattern batches the wide engine is
#: 0.3-0.9x on every catalog circuit (s5378 0.31x, s38417 0.90x,
#: s38584 1.07x) and only pulls ahead decisively on the synthetic
#: stress circuits (3.6x at 58k gates, 8x at 207k, 4096 patterns).
WIDE_MIN_GATES = 25_000

_NUMPY_AVAILABLE: Optional[bool] = None


def numpy_available() -> bool:
    """True when numpy can be imported (cached after the first probe)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import numpy  # noqa: F401
        except ImportError:
            _NUMPY_AVAILABLE = False
        else:
            _NUMPY_AVAILABLE = True
    return _NUMPY_AVAILABLE


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this interpreter, ``"int"`` always first."""
    if numpy_available():
        return (BACKEND_INT, BACKEND_NUMPY)
    return (BACKEND_INT,)


def resolve_backend(name: Optional[str]) -> str:
    """Resolve a requested backend name to ``"int"`` or ``"numpy"``.

    ``None`` and ``"auto"`` pick the numpy backend when available and
    fall back to the integer kernels otherwise.  An explicit
    ``"numpy"`` request without numpy raises
    :class:`~repro.errors.SimulationError` -- the caller asked for
    something this interpreter cannot provide.
    """
    name = BACKEND_AUTO if name is None else name
    if name == BACKEND_AUTO:
        return BACKEND_NUMPY if numpy_available() else BACKEND_INT
    if name == BACKEND_INT:
        return BACKEND_INT
    if name == BACKEND_NUMPY:
        if not numpy_available():
            raise SimulationError(
                "simulation backend 'numpy' requested but numpy is not "
                "importable; install numpy or use backend 'int'/'auto'"
            )
        return BACKEND_NUMPY
    raise SimulationError(
        f"unknown simulation backend {name!r} "
        f"(choose from 'auto', 'int', 'numpy')"
    )


def select_backend(name: Optional[str], n_patterns: int,
                   n_gates: Optional[int] = None) -> str:
    """Effective backend for one packed call of ``n_patterns`` lanes.

    Like :func:`resolve_backend`, but ``"auto"`` additionally considers
    the workload: batches of at most one word (64 patterns) stay on the
    integer kernels even when numpy is available, as do circuits below
    :data:`WIDE_MIN_GATES` evaluated gates when ``n_gates`` is given
    (pass the circuit size when known; ``None`` decides on batch width
    alone).
    """
    name = BACKEND_AUTO if name is None else name
    if name == BACKEND_AUTO:
        if n_patterns < WIDE_MIN_PATTERNS:
            return BACKEND_INT
        if n_gates is not None and n_gates < WIDE_MIN_GATES:
            return BACKEND_INT
    return resolve_backend(name)


def get_wide_engine(compiled):
    """A :class:`~repro.netlist.wide.WideEngine` over ``compiled``.

    Raises :class:`~repro.errors.SimulationError` when numpy is not
    importable (mirrors :func:`resolve_backend` on ``"numpy"``).
    """
    if not numpy_available():
        raise SimulationError(
            "simulation backend 'numpy' requested but numpy is not "
            "importable; install numpy or use backend 'int'/'auto'"
        )
    from ..netlist.wide import WideEngine
    return WideEngine(compiled)
