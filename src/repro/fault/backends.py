"""Simulation backend registry: packed-int kernels vs numpy wide-batch.

Two interchangeable fault-simulation backends exist:

``"int"``
    The packed-Python-int kernels of :mod:`repro.netlist.compiled` --
    always available, best for narrow batches and small circuits.

``"numpy"``
    The multi-word wide-batch engine of :mod:`repro.netlist.wide` --
    contiguous uint64 arrays with changed-set pruning, best for wide
    pattern batches on large circuits.  Requires numpy.

Both are pinned bit-identical (masks, dict order, coverage) on every
catalog circuit, so selection is purely a performance decision.

``"auto"`` (the default for the command-line tools) selects the numpy
backend only when numpy is importable **and** the workload is in the
regime the wide engine measurably wins: the pattern batch spans more
than one 64-bit word and the circuit is larger than anything in the
catalog (changed-set pruning pays off with cone size; on catalog-sized
circuits at ATPG batch widths the integer kernels are at least as
fast).  Requesting ``"numpy"`` explicitly without numpy installed
raises :class:`~repro.errors.SimulationError`; everything else
degrades gracefully to ``"int"``.

The registry also owns the ``batch_faults`` knob: how many faults the
wide engine packs into one plan walk (``"auto"`` sizes the batch from
circuit stats so the fault-state array stays within a fixed word
budget).  The knob is a pure performance lever -- batched results are
pinned bit-identical to both the per-fault wide path and the integer
kernels.
"""

from __future__ import annotations

import os

from typing import Optional, Tuple, Union

from ..errors import SimulationError

BACKEND_AUTO = "auto"
BACKEND_INT = "int"
BACKEND_NUMPY = "numpy"

#: ``auto`` engages the wide backend only past one word of patterns.
#: Overridable per-process via ``REPRO_WIDE_MIN_PATTERNS``.
WIDE_MIN_PATTERNS = 65

#: ... and only on circuits with at least this many evaluated gates.
#: Measured crossover: at 256-pattern batches the wide engine is
#: 0.3-0.9x on every catalog circuit (s5378 0.31x, s38417 0.90x,
#: s38584 1.07x) and only pulls ahead decisively on the synthetic
#: stress circuits (3.6x at 58k gates, 8x at 207k, 4096 patterns).
#: Overridable per-process via ``REPRO_WIDE_MIN_GATES``.
WIDE_MIN_GATES = 25_000

#: Sentinel for "size the fault batch from circuit stats".
BATCH_AUTO = "auto"

#: Hard ceiling on faults per wide-engine batch.  Past this the
#: per-level pair bookkeeping stops amortizing the python overhead it
#: is meant to remove.
WIDE_MAX_BATCH_FAULTS = 64

#: Word budget for the batched fault-state array (``n_slots * B *
#: n_words`` uint64 words, ~128 MiB at the default).  ``auto`` batch
#: sizing divides this by the per-fault footprint.
WIDE_BATCH_BUDGET_WORDS = 16_000_000

_NUMPY_AVAILABLE: Optional[bool] = None


def _env_int(env_name: str, default: int) -> int:
    """``default`` or a validated positive-int override from ``os.environ``.

    Garbage (non-integers, zero, negatives) raises a loud
    :class:`~repro.errors.SimulationError` naming the variable -- a
    mistyped override must never silently re-tune the crossover.
    """
    raw = os.environ.get(env_name)
    if raw is None or raw.strip() == "":
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise SimulationError(
            f"invalid {env_name}={raw!r}: must be a positive integer"
        ) from None
    if value < 1:
        raise SimulationError(
            f"invalid {env_name}={raw!r}: must be a positive integer"
        )
    return value


def wide_min_patterns() -> int:
    """Effective ``auto`` pattern-count crossover (env-overridable)."""
    return _env_int("REPRO_WIDE_MIN_PATTERNS", WIDE_MIN_PATTERNS)


def wide_min_gates() -> int:
    """Effective ``auto`` gate-count crossover (env-overridable)."""
    return _env_int("REPRO_WIDE_MIN_GATES", WIDE_MIN_GATES)


def numpy_available() -> bool:
    """True when numpy can be imported (cached after the first probe)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import numpy  # noqa: F401
        except ImportError:
            _NUMPY_AVAILABLE = False
        else:
            _NUMPY_AVAILABLE = True
    return _NUMPY_AVAILABLE


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this interpreter, ``"int"`` always first."""
    if numpy_available():
        return (BACKEND_INT, BACKEND_NUMPY)
    return (BACKEND_INT,)


def resolve_backend(name: Optional[str]) -> str:
    """Resolve a requested backend name to ``"int"`` or ``"numpy"``.

    ``None`` and ``"auto"`` pick the numpy backend when available and
    fall back to the integer kernels otherwise.  An explicit
    ``"numpy"`` request without numpy raises
    :class:`~repro.errors.SimulationError` -- the caller asked for
    something this interpreter cannot provide.
    """
    name = BACKEND_AUTO if name is None else name
    if name == BACKEND_AUTO:
        return BACKEND_NUMPY if numpy_available() else BACKEND_INT
    if name == BACKEND_INT:
        return BACKEND_INT
    if name == BACKEND_NUMPY:
        if not numpy_available():
            raise SimulationError(
                "simulation backend 'numpy' requested but numpy is not "
                "importable; install numpy or use backend 'int'/'auto'"
            )
        return BACKEND_NUMPY
    raise SimulationError(
        f"unknown simulation backend {name!r} "
        f"(choose from 'auto', 'int', 'numpy')"
    )


def select_backend(name: Optional[str], n_patterns: int,
                   n_gates: Optional[int] = None) -> str:
    """Effective backend for one packed call of ``n_patterns`` lanes.

    Like :func:`resolve_backend`, but ``"auto"`` additionally considers
    the workload: batches of at most one word (64 patterns) stay on the
    integer kernels even when numpy is available, as do circuits below
    :data:`WIDE_MIN_GATES` evaluated gates when ``n_gates`` is given
    (pass the circuit size when known; ``None`` decides on batch width
    alone).
    """
    name = BACKEND_AUTO if name is None else name
    if name == BACKEND_AUTO:
        if n_patterns < wide_min_patterns():
            return BACKEND_INT
        if n_gates is not None and n_gates < wide_min_gates():
            return BACKEND_INT
    return resolve_backend(name)


def resolve_batch_faults(value: Union[int, str, None]) -> Union[int, str]:
    """Validate a ``batch_faults`` knob value.

    Returns :data:`BATCH_AUTO` for ``None``/``"auto"``, the integer for
    a positive int (or a string spelling one, as CLI flags deliver),
    and raises :class:`~repro.errors.SimulationError` for anything
    else.  Call this at construction time so a bad knob fails fast
    instead of deep inside a worker.
    """
    if value is None or value == BATCH_AUTO:
        return BATCH_AUTO
    if isinstance(value, bool):
        pass  # bools are ints but never a sensible batch size
    elif isinstance(value, int):
        if value >= 1:
            return value
    elif isinstance(value, str):
        try:
            parsed = int(value.strip())
        except ValueError:
            parsed = 0
        if parsed >= 1:
            return parsed
    raise SimulationError(
        f"invalid batch_faults {value!r}: must be 'auto' or a positive "
        f"integer"
    )


def select_batch_faults(value: Union[int, str, None], n_patterns: int,
                        n_slots: int) -> int:
    """Effective faults-per-batch for one packed call.

    An explicit integer is honoured as-is.  ``"auto"`` divides
    :data:`WIDE_BATCH_BUDGET_WORDS` by the per-fault footprint
    (``n_slots`` value slots times the word count for ``n_patterns``
    lanes), clamped to ``[1, WIDE_MAX_BATCH_FAULTS]`` -- wide pattern
    batches on huge circuits get small fault batches, the narrow
    ATPG-regime batches the batching exists for get the full 64.
    """
    value = resolve_batch_faults(value)
    if value != BATCH_AUTO:
        return value
    n_words = max(1, (n_patterns + 63) // 64)
    per_fault = max(1, n_slots) * n_words
    return max(1, min(WIDE_MAX_BATCH_FAULTS,
                      WIDE_BATCH_BUDGET_WORDS // per_fault))


#: Backtrack-budget multiplier of the deep rescue policy in a racing
#: portfolio: aborts under the base budget get one more, much deeper,
#: differently-guided attempt before the fault is committed aborted.
RACE_BUDGET_FACTOR = 4


def podem_portfolio(backtrack_limit: int, base_guided: bool = False,
                    race: bool = False):
    """The ordered PODEM policy portfolio for one ATPG flow.

    Policy 0 is always the flow's own configuration (``base_guided``
    mirrors ``--analysis``), so a non-racing run degrades to exactly
    the historical single-engine search.  With ``race=True`` two
    diversity policies join: the opposite backtrace guidance at the
    same budget, and a SCOAP-guided deep search at
    :data:`RACE_BUDGET_FACTOR` times the budget.  The portfolio *order*
    is the determinism contract -- the committed outcome is the first
    non-aborted result in policy order, never the wall-clock winner --
    so the tuple must be a pure function of its arguments.
    """
    from .podem import PodemPolicy

    if backtrack_limit < 0:
        raise SimulationError(
            f"backtrack_limit must be >= 0, got {backtrack_limit}"
        )
    base = PodemPolicy(name="guided" if base_guided else "base",
                       guided=base_guided, backtrack_limit=None)
    if not race:
        return (base,)
    flipped = PodemPolicy(
        name="base" if base_guided else "guided",
        guided=not base_guided, backtrack_limit=None,
    )
    deep = PodemPolicy(name="deep-guided", guided=True,
                       backtrack_limit=RACE_BUDGET_FACTOR * backtrack_limit)
    return (base, flipped, deep)


def get_wide_engine(compiled):
    """A :class:`~repro.netlist.wide.WideEngine` over ``compiled``.

    Raises :class:`~repro.errors.SimulationError` when numpy is not
    importable (mirrors :func:`resolve_backend` on ``"numpy"``).
    """
    if not numpy_available():
        raise SimulationError(
            "simulation backend 'numpy' requested but numpy is not "
            "importable; install numpy or use backend 'int'/'auto'"
        )
    from ..netlist.wide import WideEngine
    return WideEngine(compiled)
