"""PODEM test generation for single stuck-at faults.

A PODEM (Goel 1981) over the combinational core:

* five effective values via a (good, faulty) pair per net, each in
  {0, 1, X};
* objective / backtrace / implication loop, decisions only at primary
  and state inputs;
* D-frontier tracking with X-path check;
* bounded backtracking.

The implication step runs **event-driven on the compiled flat arrays**
(:meth:`repro.netlist.CompiledNetlist.eval3_into`, the two-word-per-net
three-valued kernel): assigning a primary input re-implies only that
input's fanout cone, and within the cone only the nets whose values
actually change.  The D-frontier and X-path scans are likewise
restricted to the fault site's cone.  This replaced the historical
whole-core dict re-simulation per decision; the retained dict-based
reference (``repro.perf.reference.ReferenceThreeValuedSimulator``, built
on :func:`eval3` below) pins bit-identical three-valued results on
every catalog circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import AtpgError
from ..netlist import compile_netlist, topological_order
from ..netlist.compiled import (
    OP_AND,
    OP_AOI21,
    OP_AOI22,
    OP_BUF,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OAI21,
    OP_OAI22,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    _TWO_INPUT_OFFSET,
)
from .models import StuckFault

X = 2  # unknown in three-valued logic

#: Controlling value and inversion per function (None = no single
#: controlling value, e.g. XOR).
_CONTROLLING = {
    "AND": (0, 0),
    "NAND": (0, 1),
    "OR": (1, 0),
    "NOR": (1, 1),
    "BUF": (None, 0),
    "NOT": (None, 1),
    "XOR": (None, 0),
    "XNOR": (None, 1),
}

#: Same table keyed by generic opcode, for the compiled engine.
_OP_CONTROLLING = {
    OP_AND: (0, 0),
    OP_NAND: (0, 1),
    OP_OR: (1, 0),
    OP_NOR: (1, 1),
    OP_BUF: (None, 0),
    OP_NOT: (None, 1),
    OP_XOR: (None, 0),
    OP_XNOR: (None, 1),
    OP_AOI21: (None, 0),
    OP_AOI22: (None, 0),
    OP_OAI21: (None, 0),
    OP_OAI22: (None, 0),
    OP_MUX2: (None, 0),
}


def eval3(func: str, values: Sequence[int]) -> int:
    """Three-valued evaluation (0/1/X) of a gate function.

    This is the scalar reference semantics; the compiled two-word
    kernel (:meth:`repro.netlist.CompiledNetlist.eval3_into`) must stay
    bit-identical to it.
    """
    if func == "BUF":
        return values[0]
    if func == "NOT":
        return _inv3(values[0])
    if func in ("AND", "NAND"):
        out = _and3(values)
        return _inv3(out) if func == "NAND" else out
    if func in ("OR", "NOR"):
        out = _or3(values)
        return _inv3(out) if func == "NOR" else out
    if func in ("XOR", "XNOR"):
        out = 0
        for v in values:
            if v == X:
                return X
            out ^= v
        return (1 - out) if func == "XNOR" else out
    if func == "AOI21":
        a1, a2, b = values
        return _inv3(_or3((_and3((a1, a2)), b)))
    if func == "AOI22":
        a1, a2, b1, b2 = values
        return _inv3(_or3((_and3((a1, a2)), _and3((b1, b2)))))
    if func == "OAI21":
        a1, a2, b = values
        return _inv3(_and3((_or3((a1, a2)), b)))
    if func == "OAI22":
        a1, a2, b1, b2 = values
        return _inv3(_and3((_or3((a1, a2)), _or3((b1, b2)))))
    if func == "MUX2":
        sel, d0, d1 = values
        if sel == 0:
            return d0
        if sel == 1:
            return d1
        if d0 == d1 and d0 != X:
            return d0
        return X
    raise AtpgError(f"eval3: unsupported function {func!r}")


def _inv3(v: int) -> int:
    return X if v == X else 1 - v


def _and3(values: Sequence[int]) -> int:
    if any(v == 0 for v in values):
        return 0
    if all(v == 1 for v in values):
        return 1
    return X


def _or3(values: Sequence[int]) -> int:
    if any(v == 1 for v in values):
        return 1
    if all(v == 0 for v in values):
        return 0
    return X


@dataclass
class AtpgResult:
    """Outcome of one PODEM run."""

    fault: StuckFault
    status: str              # "detected", "untestable", "aborted"
    test: Optional[Dict[str, int]] = None  # full input assignment (X -> 0)
    backtracks: int = 0
    #: The partial assignment (test cube): only the inputs PODEM actually
    #: decided; everything absent is a don't-care.  Cubes are what static
    #: compaction merges.
    cube: Optional[Dict[str, int]] = None

    @property
    def detected(self) -> bool:
        """True if a test was found."""
        return self.status == "detected"


#: Default loop-iteration slice for resumable searches: small enough
#: that a worker polling its pipe between slices stays responsive to
#: cancellation and interleaved fault-sim requests, large enough that
#: the polling overhead disappears into the search cost.
DEFAULT_SEARCH_SLICE = 32


@dataclass(frozen=True)
class PodemPolicy:
    """One search policy of an engine portfolio.

    A policy is the *complete* recipe for one deterministic PODEM run:
    guided or unguided backtrace, and the backtrack budget.  Portfolio
    racing (see :func:`repro.fault.backends.podem_portfolio`) runs the
    same fault under several policies; because each policy's search is
    a pure function of ``(netlist, fault, policy)``, the portfolio
    outcome folded in a fixed policy order is deterministic no matter
    where or in which wall-clock order the searches actually ran.
    """

    name: str = "base"
    guided: bool = False               # SCOAP-guided backtrace/objective
    backtrack_limit: Optional[int] = None  # None = the flow's default

    def resolve_limit(self, default: int) -> int:
        return default if self.backtrack_limit is None else self.backtrack_limit

    def to_wire(self, default_limit: int,
                slice_iterations: int = DEFAULT_SEARCH_SLICE,
                ) -> Dict[str, object]:
        """Plain-dict form shipped over a worker pipe."""
        return {
            "name": self.name,
            "guided": self.guided,
            "backtrack_limit": self.resolve_limit(default_limit),
            "slice": slice_iterations,
        }


class PodemSearch:
    """One resumable PODEM search over a bound :class:`Podem` engine.

    The search loop of :meth:`Podem.generate`, restructured so it can
    run in bounded slices: :meth:`step` executes at most
    ``max_iterations`` decision-loop iterations and returns the final
    :class:`AtpgResult` once the search concludes, or ``None`` while it
    is still running.  Between slices the caller may do unrelated work
    -- a pool worker polls its pipe for cancellation and interleaved
    fault-simulation requests -- and an abandoned search needs no
    cleanup (the next search's ``_begin`` resets the engine).

    The engine's incremental three-valued state belongs to exactly one
    live search: constructing a new search (or calling
    ``generate``/``justify``) invalidates any paused one, and a stale
    :meth:`step` raises :class:`~repro.errors.AtpgError` instead of
    silently corrupting the walk.

    ``backtrack_limit`` overrides the engine's default budget for this
    search only -- the portfolio lever for differing-budget policies.
    """

    def __init__(self, engine: "Podem", fault: StuckFault,
                 require: Sequence[Tuple[str, int]] = (),
                 backtrack_limit: Optional[int] = None):
        compiled = engine.compiled
        site = compiled.index.get(fault.net)
        if site is None:
            raise AtpgError(f"fault site {fault.net!r} not in netlist")
        req: List[Tuple[int, int]] = []
        for net, value in require:
            slot = compiled.index.get(net)
            if slot is None:
                raise AtpgError(f"require net {net!r} not in netlist")
            req.append((slot, value))
        self.engine = engine
        self.fault = fault
        self.backtrack_limit = (engine.backtrack_limit
                                if backtrack_limit is None
                                else backtrack_limit)
        self._req = req
        self._site = site
        engine._begin(site, fault.value)
        engine._active_search = self
        self._assignment: Dict[int, int] = {}
        self._decisions: List[list] = []
        self.backtracks = 0
        self.result: Optional[AtpgResult] = None

    def _finish(self, status: str,
                test: Optional[Dict[str, int]] = None,
                cube: Optional[Dict[str, int]] = None) -> AtpgResult:
        self.result = AtpgResult(self.fault, status, test,
                                 self.backtracks, cube=cube)
        return self.result

    def step(self, max_iterations: Optional[int] = None,
             ) -> Optional[AtpgResult]:
        """Run up to ``max_iterations`` loop iterations (None = to the
        end); returns the result, or ``None`` if the slice ran out."""
        if self.result is not None:
            return self.result
        engine = self.engine
        if engine._active_search is not self:
            raise AtpgError(
                "PodemSearch resumed after its engine was reused by "
                "another search"
            )
        g0, g1 = engine._g0, engine._g1
        site = self._site
        fault = self.fault
        req = self._req
        assignment = self._assignment
        decisions = self._decisions
        names = engine.compiled.names
        n_prefix = engine._n_prefix
        remaining = max_iterations

        while remaining is None or remaining > 0:
            if remaining is not None:
                remaining -= 1
            req_conflict = any(
                (g0[s] if value else g1[s]) for s, value in req
            )
            req_pending = [
                (s, value) for s, value in req if not (g0[s] | g1[s])
            ]
            detected = engine._fault_at_output()
            if not req_conflict and not req_pending and detected:
                test = {
                    names[s]: assignment.get(s, 0) for s in range(n_prefix)
                }
                cube = {names[s]: v for s, v in assignment.items()}
                return self._finish("detected", test, cube)

            frontier = engine._d_frontier()
            failed = req_conflict
            if g0[site] | g1[site]:
                if g1[site] if fault.value else g0[site]:
                    failed = True        # fault can no longer be excited
                elif not detected and not engine._x_path_exists(frontier):
                    failed = True        # effect can no longer propagate

            objective = None
            if not failed:
                objective = engine._objective(site, fault.value, frontier)
                if objective is None and req_pending:
                    objective = req_pending[0]
                if objective is None:
                    failed = True

            if not failed:
                slot, value = objective
                pi, pi_value = engine._backtrace(slot, value)
                if pi not in assignment:
                    trails = engine._assign_pi(pi, pi_value)
                    decisions.append([pi, pi_value, 0, trails])
                    assignment[pi] = pi_value
                    continue
                # Backtrace landed on a decided input: the objective is
                # unreachable under the current decisions -- backtrack.

            if not engine._backtrack(assignment, decisions):
                return self._finish("untestable")
            self.backtracks += 1
            if self.backtracks > self.backtrack_limit:
                return self._finish("aborted")
        return None

    def run(self) -> AtpgResult:
        """Run the search to completion (equivalent to ``generate``)."""
        return self.step(None)


class Podem:
    """PODEM engine bound to one netlist (compiled-array internals).

    ``guidance`` (a :class:`repro.analysis.ScoapScores` over the same
    netlist) switches backtrace and objective selection from static
    depth to SCOAP costs: backtrace descends into the fanin that is
    cheapest to set to the needed value, and the D-frontier is worked
    most-observable gate first.  With ``guidance=None`` (the default)
    the search is bit-identical to the unguided engine.
    """

    def __init__(self, netlist, backtrack_limit: int = 100,
                 guidance=None):
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self._guidance = guidance
        self.compiled = compile_netlist(netlist)
        compiled = self.compiled
        self.order: List[str] = list(compiled.order)
        self.pis: Tuple[str, ...] = tuple(netlist.core_inputs)
        self.observe: Tuple[str, ...] = tuple(netlist.core_outputs)
        self._n_prefix = compiled.n_prefix
        self._n_slots = len(compiled.names)
        self._observe_idx = compiled.observe_idx

        # Per-eval-position controlling value / inversion, from opcodes.
        ctrl: List[Optional[int]] = []
        inv: List[int] = []
        for op in compiled.ops:
            code = op - _TWO_INPUT_OFFSET if op >= _TWO_INPUT_OFFSET else op
            c, i = _OP_CONTROLLING[code]
            ctrl.append(c)
            inv.append(i)
        self._ctrl = ctrl
        self._inv = inv

        # Static level map for backtrace guidance (input depth).
        depth = [0] * self._n_slots
        base = self._n_prefix
        for p, fanin in enumerate(compiled.fanins):
            depth[base + p] = 1 + max(depth[f] for f in fanin)
        self._depth = depth

        # Mutable per-generate state (set up by _begin).
        self._g0: List[int] = []
        self._g1: List[int] = []
        self._f0: List[int] = []
        self._f1: List[int] = []
        self._site: Optional[int] = None
        self._site_pos: int = -1
        self._site_cone: Tuple[int, ...] = ()
        #: The live search owning the incremental state (staleness guard
        #: for paused :class:`PodemSearch` instances).
        self._active_search: Optional["PodemSearch"] = None

    # ------------------------------------------------------------------
    # incremental three-valued simulation state
    # ------------------------------------------------------------------
    def _begin(self, site: Optional[int], fault_value: int = 0) -> None:
        """Reset to the all-X state, with the fault site forced.

        With every core input at X the fault-free machine is X on every
        net (no gate evaluates to a constant from all-X fanins), so the
        fresh zero arrays *are* the full-simulation result.  The faulty
        machine forces the site and propagates the controlling-value
        implications through its cone.
        """
        n = self._n_slots
        self._g0 = [0] * n
        self._g1 = [0] * n
        self._site = site
        if site is None:
            self._f0 = self._g0
            self._f1 = self._g1
            self._site_pos = -1
            self._site_cone = ()
            return
        compiled = self.compiled
        self._site_pos = (site - self._n_prefix
                          if site >= self._n_prefix else -1)
        self._site_cone = compiled.cone_positions(site)
        f0 = [0] * n
        f1 = [0] * n
        if fault_value:
            f1[site] = 1
        else:
            f0[site] = 1
        compiled.propagate3(f0, f1, 1, (site,), skip=self._site_pos)
        self._f0 = f0
        self._f1 = f1

    #: Undo record of one input assignment: trails of (slot, old0,
    #: old1) for the good and faulty machines.
    _Trails = Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int]]]

    def _assign_pi(self, slot: int, value: int) -> "Podem._Trails":
        """Assign one core input slot; returns the undo trails."""
        compiled = self.compiled
        n0 = 1 if value == 0 else 0
        n1 = 1 if value == 1 else 0
        g0, g1 = self._g0, self._g1
        gtrail: List[Tuple[int, int, int]] = []
        if g0[slot] != n0 or g1[slot] != n1:
            gtrail.append((slot, g0[slot], g1[slot]))
            g0[slot] = n0
            g1[slot] = n1
            compiled.propagate3(g0, g1, 1, (slot,), trail=gtrail)
        site = self._site
        if site is None or slot == site:
            # Good-only mode, or the faulty machine holds the site.
            return gtrail, []
        f0, f1 = self._f0, self._f1
        ftrail: List[Tuple[int, int, int]] = []
        if f0[slot] != n0 or f1[slot] != n1:
            ftrail.append((slot, f0[slot], f1[slot]))
            f0[slot] = n0
            f1[slot] = n1
            compiled.propagate3(f0, f1, 1, (slot,), skip=self._site_pos,
                                trail=ftrail)
        return gtrail, ftrail

    def _undo(self, trails: "Podem._Trails") -> None:
        """Restore both machines from an assignment's undo trails."""
        gtrail, ftrail = trails
        g0, g1 = self._g0, self._g1
        for slot, old0, old1 in reversed(gtrail):
            g0[slot] = old0
            g1[slot] = old1
        f0, f1 = self._f0, self._f1
        for slot, old0, old1 in reversed(ftrail):
            f0[slot] = old0
            f1[slot] = old1

    # ------------------------------------------------------------------
    # composite-value queries
    # ------------------------------------------------------------------
    def _good(self, slot: int) -> int:
        """Good-machine value of a slot in {0, 1, X}."""
        if self._g0[slot]:
            return 0
        if self._g1[slot]:
            return 1
        return X

    def _fault_at_output(self) -> bool:
        g0, g1, f0, f1 = self._g0, self._g1, self._f0, self._f1
        for out in self._observe_idx:
            if (g1[out] & f0[out]) | (g0[out] & f1[out]):
                return True
        return False

    def _d_frontier(self) -> List[int]:
        """Eval positions whose composite output is still unknown but
        with a definite fault effect (good != faulty, both known) on an
        input.  Only the fault site's cone can qualify."""
        g0, g1, f0, f1 = self._g0, self._g1, self._f0, self._f1
        fanins = self.compiled.fanins
        base = self._n_prefix
        frontier: List[int] = []
        for p in self._site_cone:
            slot = base + p
            if (g0[slot] | g1[slot]) and (f0[slot] | f1[slot]):
                continue  # composite value settled (propagated or blocked)
            for f in fanins[p]:
                if (g1[f] & f0[f]) | (g0[f] & f1[f]):
                    frontier.append(p)
                    break
        return frontier

    def _x_path_exists(self, frontier: List[int]) -> bool:
        """Can a fault effect still reach an observation point?"""
        if not frontier:
            return False
        g0, g1, f0, f1 = self._g0, self._g1, self._f0, self._f1
        fanout_pos = self.compiled._fanout_pos
        base = self._n_prefix
        observed = set(self._observe_idx)
        reachable: Set[int] = {base + p for p in frontier}
        stack = list(reachable)
        while stack:
            slot = stack.pop()
            if slot in observed:
                return True
            for pos in fanout_pos[slot]:
                sink = base + pos
                if sink in reachable:
                    continue
                if (g0[sink] | g1[sink]) and (f0[sink] | f1[sink]):
                    continue  # both machines known: no X-path through it
                reachable.add(sink)
                stack.append(sink)
        return False

    # ------------------------------------------------------------------
    def _objective(self, site: int, fault_value: int,
                   frontier: List[int]) -> Optional[Tuple[int, int]]:
        """Next (slot, value) goal: activate the fault, then propagate."""
        g0, g1 = self._g0, self._g1
        if not (g0[site] | g1[site]):
            return site, 1 - fault_value
        fanins = self.compiled.fanins
        guidance = self._guidance
        if guidance is not None and len(frontier) > 1:
            base = self._n_prefix
            co = guidance.co
            frontier = sorted(frontier, key=lambda p: (co[base + p], p))
        for p in frontier:
            ctrl = self._ctrl[p]
            value = 0 if ctrl is None else 1 - ctrl
            candidates = [f for f in fanins[p] if not (g0[f] | g1[f])]
            if not candidates:
                continue
            if guidance is None:
                return candidates[0], value
            cc = guidance.cc1 if value else guidance.cc0
            return min(candidates, key=lambda f: (cc[f], f)), value
        return None

    def _backtrace(self, slot: int, value: int) -> Tuple[int, int]:
        """Walk an objective back to an unassigned primary/state input."""
        g0, g1 = self._g0, self._g1
        fanins = self.compiled.fanins
        depth = self._depth
        base = self._n_prefix
        current, target = slot, value
        while current >= base:
            p = current - base
            if self._inv[p]:
                target = 1 - target
            fanin = fanins[p]
            # Choose the X input closest to the inputs (easiest set);
            # with SCOAP guidance, the one cheapest to drive to the
            # target value (depth breaks ties).
            candidates = [f for f in fanin if not (g0[f] | g1[f])]
            if not candidates:
                # Everything justified already; pick any input to move on.
                candidates = list(fanin)
            guidance = self._guidance
            if guidance is None:
                current = min(candidates, key=lambda f: depth[f])
            else:
                cc = guidance.cc1 if target else guidance.cc0
                current = min(candidates,
                              key=lambda f: (cc[f], depth[f]))
            # Complex gates (XOR/MUX/AOI/OAI) have no simple polarity:
            # aim for 'target' as-is; implication corrects wrong guesses.
        return current, target

    def _backtrack(self, assignment: Dict[int, int],
                   decisions: List[list]) -> bool:
        """Flip the last unflipped decision; False if none remain.

        Undoing an assignment restores the saved trail -- no
        re-propagation at all on the way up the decision stack.
        """
        while decisions and decisions[-1][2]:
            slot, _, _, trails = decisions.pop()
            del assignment[slot]
            self._undo(trails)
        if not decisions:
            return False
        slot, value, _, trails = decisions.pop()
        self._undo(trails)
        flipped = 1 - value
        trails = self._assign_pi(slot, flipped)
        decisions.append([slot, flipped, 1, trails])
        assignment[slot] = flipped
        return True

    # ------------------------------------------------------------------
    def generate(self, fault: StuckFault,
                 require: Sequence[Tuple[str, int]] = (),
                 backtrack_limit: Optional[int] = None) -> AtpgResult:
        """Try to generate a test for ``fault``.

        ``require`` adds side justification objectives: (net, value)
        pairs that must hold in the good machine alongside detection.
        Used by the two-time-frame broadside generator, where the
        frame-1 copy of the fault site must carry the initial value.

        ``backtrack_limit`` overrides the engine's default budget for
        this call only (portfolio policies); the search itself is the
        resumable :class:`PodemSearch` run in one uninterrupted slice.
        """
        return self.search(fault, require,
                           backtrack_limit=backtrack_limit).run()

    def search(self, fault: StuckFault,
               require: Sequence[Tuple[str, int]] = (),
               backtrack_limit: Optional[int] = None) -> PodemSearch:
        """A resumable search for ``fault`` (see :class:`PodemSearch`)."""
        return PodemSearch(self, fault, require,
                           backtrack_limit=backtrack_limit)

    # ------------------------------------------------------------------
    def justify(self, net: str, value: int) -> Optional[Dict[str, int]]:
        """Find an input assignment setting ``net`` to ``value``.

        Good-machine-only search over the same incremental engine;
        returns a full input vector (X -> 0) or None if ``net`` cannot
        take ``value`` within the backtrack limit.
        """
        compiled = self.compiled
        slot = compiled.index.get(net)
        if slot is None:
            raise AtpgError(f"net {net!r} not in netlist")
        self._begin(None)
        self._active_search = None  # invalidate any paused PodemSearch
        g0, g1 = self._g0, self._g1
        assignment: Dict[int, int] = {}
        decisions: List[list] = []  # [slot, value, flipped, trails]
        backtracks = 0
        names = compiled.names

        while True:
            if (g1[slot] if value else g0[slot]):
                return {
                    names[s]: assignment.get(s, 0)
                    for s in range(self._n_prefix)
                }
            if g0[slot] | g1[slot]:
                # Wrong value under current decisions: backtrack.
                if not self._backtrack(assignment, decisions):
                    return None
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return None
                continue
            pi, pi_value = self._backtrace(slot, value)
            if pi in assignment:
                if not self._backtrack(assignment, decisions):
                    return None
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return None
                continue
            trails = self._assign_pi(pi, pi_value)
            decisions.append([pi, pi_value, 0, trails])
            assignment[pi] = pi_value


def generate_tests(netlist, faults: Sequence[StuckFault],
                   backtrack_limit: int = 100) -> List[AtpgResult]:
    """Run PODEM over a fault list, one call per fault (no dropping).

    This is the naive per-fault path; the two-phase fault-dropping
    pipeline (:mod:`repro.fault.atpg_flow`) reaches the same coverage
    far faster and should be preferred for whole-circuit runs.
    """
    engine = Podem(netlist, backtrack_limit)
    return [engine.generate(fault) for fault in faults]


def justify(netlist, net: str, value: int,
            backtrack_limit: int = 100) -> Optional[Dict[str, int]]:
    """Find an input assignment setting ``net`` to ``value``.

    Used by the transition-test generator to build initialization
    patterns (V1).  Returns a full input vector or None if ``net``
    cannot take ``value``.
    """
    return Podem(netlist, backtrack_limit).justify(net, value)


# Re-export for callers that levelize through this module historically.
__all__ = [
    "AtpgResult",
    "DEFAULT_SEARCH_SLICE",
    "Podem",
    "PodemPolicy",
    "PodemSearch",
    "X",
    "eval3",
    "generate_tests",
    "justify",
    "topological_order",
]
