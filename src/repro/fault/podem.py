"""PODEM test generation for single stuck-at faults.

A textbook PODEM (Goel 1981) over the combinational core:

* five effective values via a (good, faulty) pair per net, each in
  {0, 1, X};
* objective / backtrace / implication loop, decisions only at primary
  and state inputs;
* D-frontier tracking with X-path check;
* bounded backtracking.

The implication step re-simulates the whole core in three-valued logic;
for the circuit sizes of the paper's benchmark set this is plenty fast
and keeps the code free of incremental-update subtleties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AtpgError
from ..netlist import Netlist, topological_order
from .models import StuckFault

X = 2  # unknown in three-valued logic

#: Controlling value and inversion per function (None = no single
#: controlling value, e.g. XOR).
_CONTROLLING = {
    "AND": (0, 0),
    "NAND": (0, 1),
    "OR": (1, 0),
    "NOR": (1, 1),
    "BUF": (None, 0),
    "NOT": (None, 1),
    "XOR": (None, 0),
    "XNOR": (None, 1),
}


def eval3(func: str, values: Sequence[int]) -> int:
    """Three-valued evaluation (0/1/X) of a gate function."""
    if func == "BUF":
        return values[0]
    if func == "NOT":
        return _inv3(values[0])
    if func in ("AND", "NAND"):
        out = _and3(values)
        return _inv3(out) if func == "NAND" else out
    if func in ("OR", "NOR"):
        out = _or3(values)
        return _inv3(out) if func == "NOR" else out
    if func in ("XOR", "XNOR"):
        out = 0
        for v in values:
            if v == X:
                return X
            out ^= v
        return (1 - out) if func == "XNOR" else out
    if func == "AOI21":
        a1, a2, b = values
        return _inv3(_or3((_and3((a1, a2)), b)))
    if func == "AOI22":
        a1, a2, b1, b2 = values
        return _inv3(_or3((_and3((a1, a2)), _and3((b1, b2)))))
    if func == "OAI21":
        a1, a2, b = values
        return _inv3(_and3((_or3((a1, a2)), b)))
    if func == "OAI22":
        a1, a2, b1, b2 = values
        return _inv3(_and3((_or3((a1, a2)), _or3((b1, b2)))))
    if func == "MUX2":
        sel, d0, d1 = values
        if sel == 0:
            return d0
        if sel == 1:
            return d1
        if d0 == d1 and d0 != X:
            return d0
        return X
    raise AtpgError(f"eval3: unsupported function {func!r}")


def _inv3(v: int) -> int:
    return X if v == X else 1 - v


def _and3(values: Sequence[int]) -> int:
    if any(v == 0 for v in values):
        return 0
    if all(v == 1 for v in values):
        return 1
    return X


def _or3(values: Sequence[int]) -> int:
    if any(v == 1 for v in values):
        return 1
    if all(v == 0 for v in values):
        return 0
    return X


@dataclass
class AtpgResult:
    """Outcome of one PODEM run."""

    fault: StuckFault
    status: str              # "detected", "untestable", "aborted"
    test: Optional[Dict[str, int]] = None  # full input assignment (X -> 0)
    backtracks: int = 0
    #: The partial assignment (test cube): only the inputs PODEM actually
    #: decided; everything absent is a don't-care.  Cubes are what static
    #: compaction merges.
    cube: Optional[Dict[str, int]] = None

    @property
    def detected(self) -> bool:
        """True if a test was found."""
        return self.status == "detected"


class Podem:
    """PODEM engine bound to one netlist."""

    def __init__(self, netlist: Netlist, backtrack_limit: int = 100):
        self.netlist = netlist
        self.order = topological_order(netlist)
        self.pis: Tuple[str, ...] = tuple(netlist.core_inputs)
        self.observe: Tuple[str, ...] = tuple(netlist.core_outputs)
        self.backtrack_limit = backtrack_limit
        # Static level map for backtrace guidance (input depth).
        self._depth: Dict[str, int] = {net: 0 for net in self.pis}
        for name in self.order:
            gate = netlist.gate(name)
            self._depth[name] = 1 + max(
                (self._depth.get(f, 0) for f in gate.fanin), default=0
            )

    # ------------------------------------------------------------------
    def _simulate(self, assignment: Dict[str, int], fault: StuckFault,
                  ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Three-valued good/faulty simulation under ``assignment``."""
        good: Dict[str, int] = {}
        faulty: Dict[str, int] = {}
        for net in self.pis:
            v = assignment.get(net, X)
            good[net] = v
            faulty[net] = v
        if fault.net in faulty:
            faulty[fault.net] = fault.value
        for name in self.order:
            gate = self.netlist.gate(name)
            good[name] = eval3(
                gate.func, [good[f] for f in gate.fanin]
            )
            if name == fault.net:
                faulty[name] = fault.value
            else:
                faulty[name] = eval3(
                    gate.func, [faulty[f] for f in gate.fanin]
                )
        return good, faulty

    def _fault_at_output(self, good: Dict[str, int],
                         faulty: Dict[str, int]) -> bool:
        for out in self.observe:
            g, f = good[out], faulty[out]
            if g != X and f != X and g != f:
                return True
        return False

    def _d_frontier(self, good: Dict[str, int],
                    faulty: Dict[str, int]) -> List[str]:
        """Gates whose composite output is still unknown but with a
        definite fault effect (good != faulty, both known) on an input."""
        frontier = []
        for name in self.order:
            g_out, f_out = good[name], faulty[name]
            if g_out != X and f_out != X:
                continue  # composite value settled (propagated or blocked)
            gate = self.netlist.gate(name)
            for f in gate.fanin:
                g, fv = good[f], faulty[f]
                if g != X and fv != X and g != fv:
                    frontier.append(name)
                    break
        return frontier

    def _x_path_exists(self, good: Dict[str, int],
                       faulty: Dict[str, int], frontier: List[str]) -> bool:
        """Can a fault effect still reach an observation point?"""
        if not frontier:
            return False
        x_nets = {
            name for name in self.order
            if good[name] == X or faulty[name] == X
        }
        x_nets.update(frontier)
        reachable = set(frontier)
        stack = list(frontier)
        observed = set(self.observe)
        while stack:
            net = stack.pop()
            if net in observed:
                return True
            for sink in self.netlist.fanout(net):
                gate = self.netlist.gate(sink)
                if gate.is_combinational and sink in x_nets \
                        and sink not in reachable:
                    reachable.add(sink)
                    stack.append(sink)
        return bool(reachable & observed)

    # ------------------------------------------------------------------
    def _objective(self, fault: StuckFault, good: Dict[str, int],
                   frontier: List[str]) -> Optional[Tuple[str, int]]:
        """Next (net, value) goal: activate the fault, then propagate."""
        if good[fault.net] == X:
            return fault.net, 1 - fault.value
        for name in frontier:
            gate = self.netlist.gate(name)
            ctrl, _ = _CONTROLLING.get(gate.func, (None, 0))
            for f in gate.fanin:
                if good[f] == X:
                    if ctrl is None:
                        return f, 0
                    return f, 1 - ctrl
        return None

    def _backtrace(self, net: str, value: int,
                   good: Dict[str, int]) -> Tuple[str, int]:
        """Walk an objective back to an unassigned primary/state input."""
        current, target = net, value
        while current not in self._is_pi_cache():
            gate = self.netlist.gate(current)
            ctrl, inversion = _CONTROLLING.get(gate.func, (None, 0))
            if inversion:
                target = 1 - target
            # Choose the X input closest to the inputs (easiest set).
            candidates = [f for f in gate.fanin if good[f] == X]
            if not candidates:
                # Everything justified already; pick any input to move on.
                candidates = list(gate.fanin)
            current = min(candidates, key=lambda f: self._depth.get(f, 0))
            if gate.func in ("XOR", "XNOR", "MUX2", "AOI21", "AOI22",
                             "OAI21", "OAI22"):
                # No simple polarity through complex gates: aim for 'target'
                # as-is; implication will correct wrong guesses.
                continue
        return current, target

    def _is_pi_cache(self) -> frozenset:
        cached = getattr(self, "_pi_set", None)
        if cached is None:
            cached = frozenset(self.pis)
            self._pi_set = cached
        return cached

    # ------------------------------------------------------------------
    def generate(self, fault: StuckFault,
                 require: Sequence[Tuple[str, int]] = ()) -> AtpgResult:
        """Try to generate a test for ``fault``.

        ``require`` adds side justification objectives: (net, value)
        pairs that must hold in the good machine alongside detection.
        Used by the two-time-frame broadside generator, where the
        frame-1 copy of the fault site must carry the initial value.
        """
        assignment: Dict[str, int] = {}
        decisions: List[Tuple[str, int, bool]] = []  # (pi, value, flipped)
        backtracks = 0

        while True:
            good, faulty = self._simulate(assignment, fault)
            req_conflict = any(
                good[net] != X and good[net] != value
                for net, value in require
            )
            req_pending = [
                (net, value) for net, value in require if good[net] == X
            ]
            detected = self._fault_at_output(good, faulty)
            if not req_conflict and not req_pending and detected:
                test = {net: assignment.get(net, 0) for net in self.pis}
                return AtpgResult(
                    fault, "detected", test, backtracks,
                    cube=dict(assignment),
                )

            frontier = self._d_frontier(good, faulty)
            fault_active = (
                good[fault.net] != X and good[fault.net] == 1 - fault.value
            )
            failed = req_conflict
            if good[fault.net] != X and good[fault.net] == fault.value:
                failed = True            # fault can no longer be excited
            elif (fault_active and not detected
                    and not self._x_path_exists(good, faulty, frontier)):
                failed = True            # effect can no longer propagate

            if not failed:
                objective = self._objective(fault, good, frontier)
                if objective is None and req_pending:
                    objective = req_pending[0]
                if objective is None:
                    failed = True

            if failed:
                # Backtrack: flip the last unflipped decision.
                while decisions and decisions[-1][2]:
                    pi, _, _ = decisions.pop()
                    assignment.pop(pi, None)
                if not decisions:
                    return AtpgResult(fault, "untestable",
                                      backtracks=backtracks)
                pi, value, _ = decisions.pop()
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return AtpgResult(fault, "aborted", backtracks=backtracks)
                decisions.append((pi, 1 - value, True))
                assignment[pi] = 1 - value
                continue

            net, value = objective
            pi, pi_value = self._backtrace(net, value, good)
            if pi in assignment:
                # Backtrace landed on a decided input: the objective is
                # unreachable under the current decisions -- backtrack.
                while decisions and decisions[-1][2]:
                    prev, _, _ = decisions.pop()
                    assignment.pop(prev, None)
                if not decisions:
                    return AtpgResult(fault, "untestable",
                                      backtracks=backtracks)
                prev, value_prev, _ = decisions.pop()
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return AtpgResult(fault, "aborted", backtracks=backtracks)
                decisions.append((prev, 1 - value_prev, True))
                assignment[prev] = 1 - value_prev
                continue
            decisions.append((pi, pi_value, False))
            assignment[pi] = pi_value


def generate_tests(netlist: Netlist, faults: Sequence[StuckFault],
                   backtrack_limit: int = 100) -> List[AtpgResult]:
    """Run PODEM over a fault list."""
    engine = Podem(netlist, backtrack_limit)
    return [engine.generate(fault) for fault in faults]


def justify(netlist: Netlist, net: str, value: int,
            backtrack_limit: int = 100) -> Optional[Dict[str, int]]:
    """Find an input assignment setting ``net`` to ``value``.

    Used by the transition-test generator to build initialization
    patterns (V1).  Returns a full input vector or None if ``net``
    cannot take ``value``.
    """
    # Reuse PODEM machinery: justification is "excite a stuck-at at the
    # net" without the propagation requirement, so run a tiny search.
    engine = Podem(netlist, backtrack_limit)
    assignment: Dict[str, int] = {}
    decisions: List[Tuple[str, int, bool]] = []
    backtracks = 0
    pseudo = StuckFault(net, 1 - value)
    while True:
        good, _ = engine._simulate(assignment, pseudo)
        if good[net] == value:
            return {p: assignment.get(p, 0) for p in engine.pis}
        if good[net] != X:
            # Wrong value under current decisions: backtrack.
            while decisions and decisions[-1][2]:
                pi, _, _ = decisions.pop()
                assignment.pop(pi, None)
            if not decisions:
                return None
            pi, val, _ = decisions.pop()
            backtracks += 1
            if backtracks > backtrack_limit:
                return None
            decisions.append((pi, 1 - val, True))
            assignment[pi] = 1 - val
            continue
        pi, pi_value = engine._backtrace(net, value, good)
        if pi in assignment:
            while decisions and decisions[-1][2]:
                prev, _, _ = decisions.pop()
                assignment.pop(prev, None)
            if not decisions:
                return None
            prev, val, _ = decisions.pop()
            backtracks += 1
            if backtracks > backtrack_limit:
                return None
            decisions.append((prev, 1 - val, True))
            assignment[prev] = 1 - val
            continue
        decisions.append((pi, pi_value, False))
        assignment[pi] = pi_value
