"""Event-driven timing simulation with glitch accounting.

The levelized simulator (:mod:`repro.power.logicsim`) is zero-delay: each
net toggles at most once per cycle, so hazard (glitch) power is invisible.
The paper's power numbers come from NanoSim, which sees glitches.  This
module runs a transport-delay event simulation -- every gate evaluates
``gate_delay`` after an input event, and every real output change counts
-- yielding glitch-inclusive switching activity for the power model.

Transport delay propagates all hazards (no inertial filtering), an upper
bound on glitching; the glitch *factor* (timed / zero-delay toggles) is
the quantity of interest and lands in the usual 1.2-2x band.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cells import Library, default_library
from ..errors import SimulationError
from ..netlist import Netlist, evaluate_gate, topological_order
from ..timing.delay_model import DelayOverlay, gate_delay
from .activity import activity_from_frames
from .logicsim import LogicSimulator

#: Safety valve: maximum events processed per clock cycle.
MAX_EVENTS_PER_CYCLE = 2_000_000


class TimingSimulator:
    """Transport-delay event simulator for one mapped netlist."""

    def __init__(self, netlist: Netlist,
                 library: Optional[Library] = None,
                 overlay: Optional[DelayOverlay] = None):
        if library is None:
            library = default_library()
        self.netlist = netlist
        self.order = topological_order(netlist)
        self.delay: Dict[str, float] = {
            name: gate_delay(netlist, library, name, overlay)
            for name in self.order
        }
        self._funcs = {
            name: netlist.gate(name).func for name in self.order
        }
        self._fanins = {
            name: netlist.gate(name).fanin for name in self.order
        }
        self._sinks: Dict[str, List[str]] = {}
        for name in self.order:
            for fanin in set(self._fanins[name]):
                self._sinks.setdefault(fanin, []).append(name)

    def settle(self, values: Dict[str, int],
               changed: Sequence[str]) -> Dict[str, int]:
        """Propagate input changes to steady state, counting toggles.

        ``values`` holds the pre-change steady state for every net; the
        nets in ``changed`` already carry their new values.  Returns a
        per-net toggle count (every transient change included).
        """
        toggles: Dict[str, int] = {}
        heap: List[Tuple[float, int, str, int]] = []
        counter = 0

        def schedule(net: str, at: float) -> None:
            nonlocal counter
            func = self._funcs.get(net)
            if func is None:
                return
            new = evaluate_gate(
                func, tuple(values[f] for f in self._fanins[net]), 1
            )
            heapq.heappush(heap, (at, counter, net, new))
            counter += 1

        for net in changed:
            toggles[net] = toggles.get(net, 0) + 1
            for sink in self._sinks.get(net, ()):
                schedule(sink, self.delay[sink])

        events = 0
        while heap:
            events += 1
            if events > MAX_EVENTS_PER_CYCLE:
                raise SimulationError(
                    f"{self.netlist.name}: event explosion "
                    f"(> {MAX_EVENTS_PER_CYCLE} events in one cycle)"
                )
            t, _, net, value = heapq.heappop(heap)
            # Zero-width pulses (several events on one net at the same
            # instant) coalesce to the last-scheduled value -- the
            # degenerate case an inertial gate would swallow.
            while heap and heap[0][0] == t and heap[0][2] == net:
                _, _, _, value = heapq.heappop(heap)
            # Transport delay: the output at t reflects the inputs as of
            # t - d (the scheduling instant).  The last scheduled event
            # always carries the final input state, so the steady state
            # is exact while transient hazards are preserved.
            if values[net] == value:
                continue
            values[net] = value
            toggles[net] = toggles.get(net, 0) + 1
            for sink in self._sinks.get(net, ()):
                schedule(sink, t + self.delay[sink])
        return toggles


def glitch_activity(netlist: Netlist, n_vectors: int = 50,
                    seed: int = 2005,
                    library: Optional[Library] = None,
                    overlay: Optional[DelayOverlay] = None,
                    ) -> Dict[str, float]:
    """Glitch-inclusive toggles/cycle under random vectors.

    Runs the functional sequence with the zero-delay simulator (for the
    state trajectory) and replays each cycle's input change through the
    timing simulator to count transient toggles.
    """
    logic = LogicSimulator(netlist)
    vectors = logic.random_vectors(n_vectors, seed=seed)
    frames = logic.run_sequential(vectors)
    timing = TimingSimulator(netlist, library, overlay)

    totals: Dict[str, float] = {}
    previous = frames[0]
    for frame in frames[1:]:
        values = dict(previous)
        changed = [
            net for net in list(netlist.inputs) + list(netlist.state_inputs)
            if frame[net] != previous[net]
        ]
        for net in changed:
            values[net] = frame[net]
        toggles = timing.settle(values, changed)
        for net, count in toggles.items():
            totals[net] = totals.get(net, 0.0) + count
        previous = frame
    cycles = max(len(frames) - 1, 1)
    return {net: count / cycles for net, count in totals.items()}


@dataclass(frozen=True)
class GlitchReport:
    """Zero-delay vs glitch-inclusive switching activity."""

    circuit: str
    zero_delay_toggles: float      # mean toggles/cycle over all nets
    timed_toggles: float

    @property
    def glitch_factor(self) -> float:
        """Timed over zero-delay toggle ratio (>= 1)."""
        if self.zero_delay_toggles == 0.0:
            return 1.0
        return self.timed_toggles / self.zero_delay_toggles


def glitch_study(netlist: Netlist, n_vectors: int = 50,
                 seed: int = 2005,
                 library: Optional[Library] = None) -> GlitchReport:
    """Measure the glitch factor of a circuit under random vectors."""
    logic = LogicSimulator(netlist)
    vectors = logic.random_vectors(n_vectors, seed=seed)
    frames = logic.run_sequential(vectors)
    zero = activity_from_frames(frames)
    timed = glitch_activity(
        netlist, n_vectors=n_vectors, seed=seed, library=library
    )
    comb = [g.name for g in netlist.combinational_gates()]
    zero_mean = sum(zero.get(n, 0.0) for n in comb) / max(len(comb), 1)
    timed_mean = sum(timed.get(n, 0.0) for n in comb) / max(len(comb), 1)
    return GlitchReport(
        circuit=netlist.name,
        zero_delay_toggles=zero_mean,
        timed_toggles=timed_mean,
    )
