"""Logic simulation, switching activity and power analysis.

Public surface::

    from repro.power import LogicSimulator, switching_activity
    from repro.power import analyze_power, PowerReport, PowerOverlay
"""

from .activity import (
    DEFAULT_VECTORS,
    activity_from_frames,
    mean_activity,
    switching_activity,
)
from .eventsim import (
    GlitchReport,
    TimingSimulator,
    glitch_activity,
    glitch_study,
)
from .logicsim import LogicSimulator, pack_patterns, unpack_word
from .power_model import (
    PowerOverlay,
    PowerReport,
    analyze_power,
    clock_power,
    dynamic_power,
    leakage_power,
)

__all__ = [
    "DEFAULT_VECTORS",
    "GlitchReport",
    "LogicSimulator",
    "TimingSimulator",
    "PowerOverlay",
    "PowerReport",
    "activity_from_frames",
    "analyze_power",
    "clock_power",
    "dynamic_power",
    "glitch_activity",
    "glitch_study",
    "leakage_power",
    "mean_activity",
    "pack_patterns",
    "switching_activity",
    "unpack_word",
]
