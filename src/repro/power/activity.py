"""Switching-activity extraction from random-vector simulation.

Activity of a net = average toggles per clock cycle over the vector
stream, the quantity the dynamic-power model multiplies by the switched
capacitance.  The paper measures power "by applying 100 random vectors
to the inputs"; :func:`switching_activity` is that run.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..netlist import Netlist
from .logicsim import LogicSimulator

#: Paper's vector count for the NanoSim power measurement.
DEFAULT_VECTORS = 100


def activity_from_frames(frames: Sequence[Mapping[str, int]]) -> Dict[str, float]:
    """Toggles per cycle for every net given consecutive value frames."""
    if len(frames) < 2:
        return {net: 0.0 for net in (frames[0] if frames else {})}
    toggles: Dict[str, int] = {net: 0 for net in frames[0]}
    previous = frames[0]
    for frame in frames[1:]:
        for net, value in frame.items():
            if value != previous.get(net, 0):
                toggles[net] = toggles.get(net, 0) + 1
        previous = frame
    cycles = len(frames) - 1
    return {net: count / cycles for net, count in toggles.items()}


def switching_activity(netlist: Netlist, n_vectors: int = DEFAULT_VECTORS,
                       seed: int = 2005,
                       simulator: Optional[LogicSimulator] = None,
                       ) -> Dict[str, float]:
    """Per-net toggles/cycle under ``n_vectors`` random input vectors."""
    sim = simulator or LogicSimulator(netlist)
    vectors = sim.random_vectors(n_vectors, seed=seed)
    frames = sim.run_sequential(vectors)
    return activity_from_frames(frames)


def mean_activity(activity: Mapping[str, float]) -> float:
    """Average toggles/cycle across all nets (diagnostic)."""
    if not activity:
        return 0.0
    return sum(activity.values()) / len(activity)
