"""Dynamic, clock and leakage power models.

Normal-mode power of a (possibly DFT-transformed) design::

    P = P_dynamic + P_clock + P_leakage

* ``P_dynamic`` -- per net: toggles/cycle x (1/2) C V^2 x f, where C is
  the driver's parasitic + internal cap plus the full fanout load
  (including any DFT overlay capacitance such as the FLH keeper).
* ``P_clock``  -- clock pin capacitance of sequential cells, two edges
  per cycle.  Hold-latch control (HOLD) and FLH gating controls are
  static in normal mode and burn nothing here, exactly the paper's
  argument for why FLH's normal-mode overhead is tiny.
* ``P_leakage`` -- per cell from transistor widths; a
  :class:`PowerOverlay` can scale the leakage of supply-gated gates by
  the stacking factor and add the keeper devices' own leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from .. import units
from ..cells import Library, default_library
from ..errors import SimulationError
from ..netlist import Netlist
from ..timing.delay_model import DelayOverlay, load_on_net
from .activity import switching_activity


@dataclass
class PowerOverlay:
    """DFT-induced modifications to the power model.

    Attributes
    ----------
    extra_cap:
        Extra farads switched with each toggle of a net (keeper TG
        diffusion + sense-inverter gate on FLH first-level outputs).
    extra_energy_per_toggle:
        Extra joules per toggle of a net (internal switching of the FLH
        keeper's sense inverter).
    leakage_scale:
        Per-gate multiplicative factor on cell leakage (stacking factor
        for supply-gated first-level gates).
    extra_leakage:
        Additional static watts (keeper + gating devices themselves).
    """

    extra_cap: Dict[str, float] = field(default_factory=dict)
    extra_energy_per_toggle: Dict[str, float] = field(default_factory=dict)
    leakage_scale: Dict[str, float] = field(default_factory=dict)
    extra_leakage: float = 0.0


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown in watts."""

    circuit: str
    dynamic: float
    clock: float
    leakage: float

    @property
    def total(self) -> float:
        """Total normal-mode power."""
        return self.dynamic + self.clock + self.leakage

    def as_row(self) -> Dict[str, float]:
        """Flat dict (microwatts) for tabular reports."""
        return {
            "dynamic_uW": self.dynamic / units.UW,
            "clock_uW": self.clock / units.UW,
            "leakage_uW": self.leakage / units.UW,
            "total_uW": self.total / units.UW,
        }


def dynamic_power(netlist: Netlist, activity: Mapping[str, float],
                  library: Optional[Library] = None,
                  overlay: Optional[PowerOverlay] = None,
                  frequency: float = units.FCLK_NORMAL,
                  gate_filter: Optional[Callable] = None) -> float:
    """Switching power of the logic in watts.

    ``gate_filter(gate) -> bool`` restricts accounting (e.g. to the
    combinational gates only, for Table IV's combinational power).
    """
    if library is None:
        library = default_library()
    delay_overlay = DelayOverlay(
        extra_load={} if overlay is None else dict(overlay.extra_cap)
    )
    total = 0.0
    for gate in netlist.gates():
        if gate.is_input:
            continue
        if gate_filter is not None and not gate_filter(gate):
            continue
        alpha = activity.get(gate.name, 0.0)
        if alpha == 0.0:
            continue
        if gate.cell is None:
            raise SimulationError(
                f"{netlist.name}: gate {gate.name!r} is not mapped"
            )
        cell = library.cell(gate.cell)
        load = load_on_net(netlist, library, gate.name, delay_overlay)
        energy = cell.switch_energy(load)
        if overlay is not None:
            energy += overlay.extra_energy_per_toggle.get(gate.name, 0.0)
        total += alpha * energy * frequency
    return total


def clock_power(netlist: Netlist, library: Optional[Library] = None,
                frequency: float = units.FCLK_NORMAL) -> float:
    """Clock-distribution power of the sequential cells in watts."""
    if library is None:
        library = default_library()
    total = 0.0
    for gate in netlist.gates():
        if gate.cell is None:
            continue
        cell = library.cell(gate.cell)
        if cell.seq and cell.clock_cap > 0.0:
            total += cell.clock_energy() * frequency
    return total


def leakage_power(netlist: Netlist, library: Optional[Library] = None,
                  overlay: Optional[PowerOverlay] = None,
                  gate_filter: Optional[Callable] = None) -> float:
    """Static power in watts (overlay applies stacking and keeper leak)."""
    if library is None:
        library = default_library()
    total = 0.0
    for gate in netlist.gates():
        if gate.is_input or gate.cell is None:
            continue
        if gate_filter is not None and not gate_filter(gate):
            continue
        cell = library.cell(gate.cell)
        leak = cell.leakage_power
        if overlay is not None:
            leak *= overlay.leakage_scale.get(gate.name, 1.0)
        total += leak
    if overlay is not None:
        total += overlay.extra_leakage
    return total


def analyze_power(netlist: Netlist, library: Optional[Library] = None,
                  overlay: Optional[PowerOverlay] = None,
                  n_vectors: int = 100, seed: int = 2005,
                  frequency: float = units.FCLK_NORMAL,
                  activity: Optional[Mapping[str, float]] = None,
                  ) -> PowerReport:
    """Full normal-mode power analysis (the paper's Table III metric)."""
    if library is None:
        library = default_library()
    if activity is None:
        activity = switching_activity(netlist, n_vectors=n_vectors, seed=seed)
    return PowerReport(
        circuit=netlist.name,
        dynamic=dynamic_power(netlist, activity, library, overlay, frequency),
        clock=clock_power(netlist, library, frequency),
        leakage=leakage_power(netlist, library, overlay),
    )
