"""Event-free levelized logic simulation.

Two simulators share the same compiled structure:

* :meth:`LogicSimulator.eval_combinational` -- bit-parallel (one integer
  bit lane per pattern) evaluation of the combinational core, used by
  fault simulation and ATPG;
* :meth:`LogicSimulator.run_sequential` -- cycle-by-cycle simulation of
  the full sequential circuit under a vector stream, used to extract
  switching activity for the power model (the paper's "100 random
  vectors" NanoSim run).

The heavy lifting is done by :class:`repro.netlist.CompiledNetlist`:
the netlist is lowered once (per content hash, process-wide) into flat
integer-indexed arrays, so the per-cycle inner loop touches only lists
and ints -- no string-keyed dict lookups, no per-gate dispatch on the
function name.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..netlist import Netlist, compile_netlist


class LogicSimulator:
    """Compiled simulator for one netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        #: Shared flat-array lowering (cached by netlist content hash).
        self.compiled = compile_netlist(netlist)
        self.order: List[str] = list(self.compiled.order)
        self.dff_names: List[str] = list(self.compiled.dff_names)
        self.dff_data: List[str] = list(self.compiled.dff_data)

    # ------------------------------------------------------------------
    def eval_combinational(self, values: Dict[str, int],
                           mask: int = 1) -> Dict[str, int]:
        """Evaluate the combinational core in place.

        ``values`` must hold packed words for every primary input and
        every state input; the dict is updated with every internal net
        and returned.
        """
        compiled = self.compiled
        arr = [0] * len(compiled.names)
        names = compiled.names
        n_inputs = compiled.n_inputs
        for i in range(compiled.n_prefix):
            net = names[i]
            word = values.get(net)
            if word is None:
                kind = "input" if i < n_inputs else "state input"
                raise SimulationError(f"missing value for {kind} {net!r}")
            arr[i] = word
        compiled.eval_into(arr, mask)
        for i in range(compiled.n_prefix, len(names)):
            values[names[i]] = arr[i]
        return values

    # ------------------------------------------------------------------
    def run_sequential(
        self,
        vectors: Sequence[Mapping[str, int]],
        initial_state: Optional[Mapping[str, int]] = None,
    ) -> List[Dict[str, int]]:
        """Clock the circuit through ``vectors`` (one mapping per cycle).

        Returns the full net-value dict for every cycle (single-bit
        values).  State starts at ``initial_state`` (default all zeros).
        """
        compiled = self.compiled
        state: List[int] = [0] * len(self.dff_names)
        if initial_state:
            position = {name: i for i, name in enumerate(self.dff_names)}
            for name, value in initial_state.items():
                pos = position.get(name)
                if pos is None:
                    raise SimulationError(f"{name!r} is not a flip-flop")
                state[pos] = value & 1
        frames: List[Dict[str, int]] = []
        names = compiled.names
        n_inputs = compiled.n_inputs
        n_prefix = compiled.n_prefix
        dff_data_idx = compiled.dff_data_idx
        arr = [0] * len(names)
        for vector in vectors:
            for i in range(n_inputs):
                arr[i] = vector.get(names[i], 0) & 1
            arr[n_inputs:n_prefix] = state
            compiled.eval_into(arr, 1)
            frames.append(dict(zip(names, arr)))
            state = [arr[idx] & 1 for idx in dff_data_idx]
        return frames

    # ------------------------------------------------------------------
    def random_vectors(self, n: int, seed: int = 2005,
                       ) -> List[Dict[str, int]]:
        """``n`` uniform random primary-input vectors (deterministic)."""
        rng = random.Random(seed)
        return [
            {net: rng.randint(0, 1) for net in self.netlist.inputs}
            for _ in range(n)
        ]


def pack_patterns(patterns: Sequence[Mapping[str, int]],
                  nets: Iterable[str],
                  strict: bool = False) -> Tuple[Dict[str, int], int]:
    """Pack per-pattern bit values into parallel words.

    Returns ``(values, mask)`` where bit *i* of ``values[net]`` is the
    value of ``net`` in ``patterns[i]``.

    By default a pattern that does not assign a net is zero-filled for
    that net -- convenient for don't-cares, but silently wrong when the
    caller *meant* to supply every bit.  With ``strict=True`` a missing
    net raises :class:`~repro.errors.SimulationError` instead; the fault
    simulator and ATPG run in strict mode.  The strict error reports
    *every* missing net of the first underspecified pattern at once, so
    a hand-written pattern file can be fixed in one pass instead of one
    whack-a-mole net per run.
    """
    nets = list(nets)
    values: Dict[str, int] = {}
    n = len(patterns)
    for net in nets:
        word = 0
        for i, pattern in enumerate(patterns):
            bit = pattern.get(net)
            if bit is None:
                if strict:
                    _raise_strict_packing(patterns, nets)
                bit = 0
            if bit & 1:
                word |= 1 << i
        values[net] = word
    return values, (1 << n) - 1 if n else 0


def _raise_strict_packing(patterns: Sequence[Mapping[str, int]],
                          nets: Sequence[str]) -> None:
    """Raise for the first underspecified pattern, naming every net it
    misses (called only once a missing assignment is already known)."""
    for i, pattern in enumerate(patterns):
        missing = [net for net in nets if pattern.get(net) is None]
        if not missing:
            continue
        if len(missing) == 1:
            raise SimulationError(
                f"pattern {i} assigns no value to net {missing[0]!r} "
                f"(strict packing)"
            )
        listed = ", ".join(repr(net) for net in missing)
        raise SimulationError(
            f"pattern {i} assigns no value to nets {listed} "
            f"(strict packing)"
        )
    raise SimulationError(
        "strict packing failed but no missing net was found "
        "(inconsistent pattern mappings)"
    )


def unpack_word(word: int, n: int) -> List[int]:
    """Split a packed word back into ``n`` single-bit values."""
    return [(word >> i) & 1 for i in range(n)]
