"""Event-free levelized logic simulation.

Two simulators share the same compiled structure:

* :meth:`LogicSimulator.eval_combinational` -- bit-parallel (one integer
  bit lane per pattern) evaluation of the combinational core, used by
  fault simulation and ATPG;
* :meth:`LogicSimulator.run_sequential` -- cycle-by-cycle simulation of
  the full sequential circuit under a vector stream, used to extract
  switching activity for the power model (the paper's "100 random
  vectors" NanoSim run).

The compile step flattens the netlist into parallel arrays once, so the
per-cycle inner loop touches only lists and ints.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..netlist import Netlist, evaluate_gate, topological_order


class LogicSimulator:
    """Compiled simulator for one netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.order: List[str] = topological_order(netlist)
        self._funcs: List[str] = []
        self._fanins: List[Tuple[str, ...]] = []
        for name in self.order:
            gate = netlist.gate(name)
            self._funcs.append(gate.func)
            self._fanins.append(gate.fanin)
        self.dff_names: List[str] = [g.name for g in netlist.dffs()]
        self.dff_data: List[str] = [g.fanin[0] for g in netlist.dffs()]

    # ------------------------------------------------------------------
    def eval_combinational(self, values: Dict[str, int],
                           mask: int = 1) -> Dict[str, int]:
        """Evaluate the combinational core in place.

        ``values`` must hold packed words for every primary input and
        every state input; the dict is updated with every internal net
        and returned.
        """
        for net in self.netlist.inputs:
            if net not in values:
                raise SimulationError(f"missing value for input {net!r}")
        for net in self.dff_names:
            if net not in values:
                raise SimulationError(f"missing value for state input {net!r}")
        for name, func, fanin in zip(self.order, self._funcs, self._fanins):
            values[name] = evaluate_gate(
                func, tuple(values[f] for f in fanin), mask
            )
        return values

    # ------------------------------------------------------------------
    def run_sequential(
        self,
        vectors: Sequence[Mapping[str, int]],
        initial_state: Optional[Mapping[str, int]] = None,
    ) -> List[Dict[str, int]]:
        """Clock the circuit through ``vectors`` (one mapping per cycle).

        Returns the full net-value dict for every cycle (single-bit
        values).  State starts at ``initial_state`` (default all zeros).
        """
        state: Dict[str, int] = {
            name: 0 for name in self.dff_names
        }
        if initial_state:
            for name, value in initial_state.items():
                if name not in state:
                    raise SimulationError(f"{name!r} is not a flip-flop")
                state[name] = value & 1
        frames: List[Dict[str, int]] = []
        for vector in vectors:
            values: Dict[str, int] = dict(state)
            for net in self.netlist.inputs:
                values[net] = vector.get(net, 0) & 1
            self.eval_combinational(values, mask=1)
            frames.append(values)
            state = {
                name: values[data] & 1
                for name, data in zip(self.dff_names, self.dff_data)
            }
        return frames

    # ------------------------------------------------------------------
    def random_vectors(self, n: int, seed: int = 2005,
                       ) -> List[Dict[str, int]]:
        """``n`` uniform random primary-input vectors (deterministic)."""
        rng = random.Random(seed)
        return [
            {net: rng.randint(0, 1) for net in self.netlist.inputs}
            for _ in range(n)
        ]


def pack_patterns(patterns: Sequence[Mapping[str, int]],
                  nets: Iterable[str]) -> Tuple[Dict[str, int], int]:
    """Pack per-pattern bit values into parallel words.

    Returns ``(values, mask)`` where bit *i* of ``values[net]`` is the
    value of ``net`` in ``patterns[i]``.
    """
    values: Dict[str, int] = {}
    n = len(patterns)
    for net in nets:
        word = 0
        for i, pattern in enumerate(patterns):
            if pattern.get(net, 0) & 1:
                word |= 1 << i
        values[net] = word
    return values, (1 << n) - 1 if n else 0


def unpack_word(word: int, n: int) -> List[int]:
    """Split a packed word back into ``n`` single-bit values."""
    return [(word >> i) & 1 for i in range(n)]
