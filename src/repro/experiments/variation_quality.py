"""Process-variation motivation study (paper Section I).

Monte-Carlo STA quantifies how per-gate delay fluctuation spreads the
critical delay (delay faults without defects), and the defect-escape
study shows the arbitrary two-pattern application style catching more
variation-induced gross delay defects than the broadside baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import units
from ..fault import (
    STYLE_ARBITRARY,
    STYLE_BROADSIDE,
    EscapeReport,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
    escape_study,
)
from ..timing import VariationReport, monte_carlo_delay
from .common import circuit, styled_designs
from .report import format_table


@dataclass(frozen=True)
class VariationQualityResult:
    """Monte-Carlo spread plus per-style escape rates."""

    circuit: str
    variation: VariationReport
    clock_period: float
    failure_probability: float
    escapes: Dict[str, EscapeReport]

    @property
    def ordering_holds(self) -> bool:
        """Arbitrary application lets no more defects escape."""
        return (
            self.escapes[STYLE_ARBITRARY].escape_rate
            <= self.escapes[STYLE_BROADSIDE].escape_rate
        )

    def render(self) -> str:
        """Readable two-table summary."""
        v = self.variation
        spread_rows: List[Dict[str, object]] = [
            {
                "nominal_ps": round(v.nominal_delay / units.PS, 1),
                "mean_ps": round(v.mean / units.PS, 1),
                "std_ps": round(v.std / units.PS, 2),
                "worst_ps": round(v.worst / units.PS, 1),
                "P(fail)": round(self.failure_probability, 3),
            }
        ]
        escape_rows = [
            {
                "test_set": label,
                "defects": r.n_defects,
                "caught": r.caught,
                "escape_rate": round(r.escape_rate, 3),
            }
            for label, r in self.escapes.items()
        ]
        return "\n".join(
            [
                format_table(
                    spread_rows,
                    title=(
                        f"Monte-Carlo critical delay ({self.circuit}, "
                        f"clock = nominal + 5%)"
                    ),
                ),
                format_table(
                    escape_rows,
                    title="variation-induced delay-defect escapes",
                ),
                "arbitrary escapes <= broadside: "
                + ("YES" if self.ordering_holds else "NO"),
            ]
        )


def run(circuit_name: str = "s298", n_samples: int = 200,
        sigma: float = 0.08, n_defects: int = 60,
        n_random_pairs: int = 48, seed: int = 9) -> VariationQualityResult:
    """Run the Section I study on one circuit."""
    netlist = circuit(circuit_name)
    mapped = styled_designs(circuit_name)["scan"].netlist

    variation = monte_carlo_delay(
        mapped, n_samples=n_samples, sigma=sigma
    )
    clock = variation.nominal_delay * 1.05
    fail_prob = variation.failure_probability(clock)

    faults = collapse_transition(netlist, all_transition_faults(netlist))
    test_sets = {}
    for style in (STYLE_ARBITRARY, STYLE_BROADSIDE):
        result = TransitionAtpg(netlist, seed=3).generate(
            faults, style=style, n_random_pairs=n_random_pairs
        )
        test_sets[style] = result.tests
    escapes = escape_study(
        netlist, test_sets, n_defects=n_defects, seed=seed
    )
    return VariationQualityResult(
        circuit=circuit_name,
        variation=variation,
        clock_period=clock,
        failure_probability=fail_prob,
        escapes=escapes,
    )


def main() -> None:
    """Print the variation/quality study."""
    print(run().render())


if __name__ == "__main__":
    main()
