"""Shared experiment plumbing: circuit/design caching and flow defaults.

All table experiments run the same front-end flow (reconstruct circuit,
technology-map, insert scan, derive the three holding styles); this
module caches those products per circuit so one bench session never
repeats the work.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..bench import TABLE13_CIRCUITS, TABLE4_CIRCUITS, load_circuit
from ..cells import default_library
from ..dft import DftDesign, FlhConfig, build_all_styles
from ..netlist import Netlist, clear_compile_cache, collect_stats

#: Paper's random-vector count for power measurements.
POWER_VECTORS = 100
#: Deterministic seed used across all experiments.
SEED = 2005

_design_cache: Dict[Tuple[str, Optional[FlhConfig]],
                    Dict[str, DftDesign]] = {}
_netlist_cache: Dict[str, Netlist] = {}


def circuit(name: str) -> Netlist:
    """Cached reconstruction of a benchmark circuit."""
    if name not in _netlist_cache:
        _netlist_cache[name] = load_circuit(name)
    return _netlist_cache[name]


def styled_designs(name: str,
                   flh_config: Optional[FlhConfig] = None,
                   ) -> Dict[str, DftDesign]:
    """Cached scan/enhanced/mux/flh designs for a circuit.

    The cache is keyed on ``(name, flh_config)`` -- :class:`FlhConfig`
    is a frozen, hashable dataclass -- so a Table IV or ablation sweep
    that revisits the same non-default sizing config reuses the built
    designs instead of re-running synthesis on every call (the old key
    collapsed every custom config onto "not default" and never cached
    any of them).
    """
    key = (name, flh_config)
    designs = _design_cache.get(key)
    if designs is None:
        designs = build_all_styles(
            circuit(name), default_library(), flh_config
        )
        _design_cache[key] = designs
    return designs


def clear_caches() -> None:
    """Drop cached circuits/designs/compiled kernels between bench groups."""
    _design_cache.clear()
    _netlist_cache.clear()
    clear_compile_cache()


def default_circuits(table: int) -> Sequence[str]:
    """Circuit list per paper table (1-3 share one list, 4 its own)."""
    return TABLE4_CIRCUITS if table == 4 else TABLE13_CIRCUITS


def structural_row(name: str) -> Dict[str, object]:
    """Table I's structural columns for one circuit."""
    stats = collect_stats(circuit(name))
    return {
        "circuit": name,
        "FF": stats.n_dffs,
        "total_fanouts": stats.total_state_fanout,
        "unique_fanouts": stats.unique_first_level,
        "ratio": round(stats.unique_fanout_ratio, 2),
    }
