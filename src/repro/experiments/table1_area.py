"""Table I: comparison of percentage area increase.

For every benchmark circuit: flip-flop count, total and unique state-
input fanouts, and the percentage increase in total transistor active
area of enhanced scan, the MUX-based method, and FLH over the plain
full-scan baseline -- plus FLH's improvement over each.

Paper headline: FLH reduces area overhead by 33% on average versus
enhanced scan and 26% versus the MUX method; circuits with very high
state-input fanout (s838) can invert the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dft import OverheadComparison, compare_area
from .common import default_circuits, structural_row, styled_designs
from .parallel import error_row, run_per_circuit
from .report import format_table, mean, summary_line


@dataclass(frozen=True)
class Table1Result:
    """All rows plus the paper-style averages."""

    rows: List[Dict[str, object]]
    comparisons: List[OverheadComparison]

    @property
    def average_improvement_vs_enhanced(self) -> float:
        """Average % reduction of area overhead vs enhanced scan."""
        return mean(
            c.improvement_vs_enhanced for c in self.comparisons
        )

    @property
    def average_improvement_vs_mux(self) -> float:
        """Average % reduction of area overhead vs the MUX method."""
        return mean(
            c.improvement_vs_mux for c in self.comparisons
        )

    def render(self) -> str:
        """Paper-style text table."""
        body = format_table(
            self.rows, title="Table I -- comparison of percentage area increase"
        )
        lines = [
            body,
            summary_line(
                "average FLH improvement over enhanced scan (%)",
                (c.improvement_vs_enhanced for c in self.comparisons),
            ),
            summary_line(
                "average FLH improvement over MUX (%)",
                (c.improvement_vs_mux for c in self.comparisons),
            ),
        ]
        return "\n".join(lines)


def _circuit_result(name: str):
    """Row + comparison for one circuit (module-level: picklable)."""
    designs = styled_designs(name)
    comparison = compare_area(designs)
    row = structural_row(name)
    row.update(comparison.as_row())
    row.pop("circuit", None)
    row = {"circuit": name, **row}
    return row, comparison


def run(circuits: Optional[Sequence[str]] = None,
        processes: int = 1,
        task_timeout: Optional[float] = None) -> Table1Result:
    """Run the Table I experiment.

    ``processes > 1`` fans circuits out across worker processes; a
    circuit that fails degrades to an error row instead of killing the
    table.  Result ordering matches the circuit list either way.
    """
    names = list(circuits or default_circuits(1))
    rows: List[Dict[str, object]] = []
    comparisons: List[OverheadComparison] = []
    for outcome in run_per_circuit(_circuit_result, names,
                                   processes=processes,
                                   timeout=task_timeout):
        if outcome.ok:
            row, comparison = outcome.value
            rows.append(row)
            comparisons.append(comparison)
        else:
            rows.append(error_row(outcome))
    return Table1Result(rows=rows, comparisons=comparisons)


def main() -> None:
    """Print the full Table I reproduction."""
    print(run().render())


if __name__ == "__main__":
    main()
