"""Figure 4: the FLH keeper holds the gated stage's state.

Same gated inverter chain as Fig. 2 but with the Fig. 3 keeper
(cross-coupled minimum inverters behind a sleep-enabled transmission
gate) on OUT1.  Despite the input switching during sleep, OUT1/OUT2/OUT3
stay pinned at their rails for the whole scan window -- "the circuit can
strongly hold its state despite the switching at the input".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import units
from ..spice import HoldReport, flh_hold
from .report import format_table


@dataclass(frozen=True)
class Fig4Result:
    """Measurements plus a waveform table."""

    report: HoldReport
    waveform_rows: List[Dict[str, object]]

    def render(self) -> str:
        """Readable summary plus sampled waveforms."""
        r = self.report
        lines = [
            "Figure 4 -- FLH keeper holding the gated stage",
            f"OUT1 minimum = {r.out1_min:.3f} V (held high)",
            f"OUT2 maximum = {r.out2_max:.3f} V (held low)",
            f"OUT3 minimum = {r.out3_min:.3f} V (held high)",
            f"state held: {'YES' if r.holds() else 'NO'}",
            "",
            format_table(self.waveform_rows, title="sampled waveforms"),
        ]
        return "\n".join(lines)


def run(t_stop: float = 100 * units.NS, samples: int = 12) -> Fig4Result:
    """Run the Fig. 4 experiment and sample the waveforms."""
    report = flh_hold(t_stop=t_stop)
    result = report.result
    rows: List[Dict[str, object]] = []
    n = len(result.times)
    step = max(n // samples, 1)
    for idx in range(0, n, step):
        rows.append(
            {
                "t_ns": round(float(result.times[idx]) / units.NS, 2),
                "OUT1_V": round(float(result.voltages["out1"][idx]), 3),
                "OUT2_V": round(float(result.voltages["out2"][idx]), 3),
                "OUT3_V": round(float(result.voltages["out3"][idx]), 3),
            }
        )
    return Fig4Result(report=report, waveform_rows=rows)


def main() -> None:
    """Print the Fig. 4 reproduction."""
    print(run().render())


if __name__ == "__main__":
    main()
