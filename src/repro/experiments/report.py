"""Plain-text table rendering for experiment results.

Every experiment driver emits rows as flat dicts; :func:`format_table`
renders them in the aligned, monospace style of the paper's tables so
the bench output can be compared side by side with the publication.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 title: Optional[str] = None,
                 columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def mean(values: Iterable[float], empty: float = 0.0) -> float:
    """Arithmetic mean, defined as ``empty`` for an empty sequence.

    The per-table average properties use this so a run where every
    circuit errored out (all rows degraded) renders an average of 0.0
    instead of dying on a ZeroDivisionError.
    """
    data = list(values)
    if not data:
        return empty
    return sum(data) / len(data)


def summary_line(label: str, values: Iterable[float]) -> str:
    """A one-line average summary like the paper's in-text averages."""
    data = list(values)
    if not data:
        return f"{label}: n/a"
    return f"{label}: {mean(data):.1f}"
