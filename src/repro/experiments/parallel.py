"""Parallel experiment execution: fan work out across circuits.

The table and coverage experiments are embarrassingly parallel over
circuits, and each circuit is independent (its own synthesis, DFT
transforms and simulations).  :class:`ParallelRunner` maps a function
over a work list with:

* ``processes=1`` (the default) running everything inline -- identical
  results to a plain loop, no pickling requirements;
* ``processes=N`` running each task in its *own* subprocess (fork where
  available), so a crash -- even a hard interpreter abort -- in one
  circuit cannot take down the run;
* a per-task ``timeout`` (subprocess mode only) that terminates the
  worker and reports the task as failed;
* **deterministic result ordering**: outcomes always come back in work
  list order, regardless of completion order.

A failed task degrades to a :class:`TaskOutcome` with ``ok=False`` and
an error string; the experiment drivers turn that into a reported error
row instead of killing the whole table.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs import get_recorder


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one task: either a value or an error description."""

    index: int              #: position in the submitted work list
    item: Any               #: the submitted work item
    ok: bool
    value: Any = None
    error: Optional[str] = None
    duration: float = 0.0   #: wall-clock seconds spent on the task
    timed_out: bool = False


#: Child exit code when the result pipe itself failed: the task may
#: have finished, but its outcome could not be shipped.  Distinct from
#: 0 so the parent never mistakes a lost result for a clean exit, and
#: distinct from common signal/interpreter codes.
RESULT_PIPE_EXIT = 13


def _child_main(conn, fn: Callable[[Any], Any], item: Any) -> None:
    """Subprocess entry: run one task and ship the outcome back.

    A failure to *send* (unpicklable value, broken/closed pipe) exits
    with :data:`RESULT_PIPE_EXIT` instead of 0: an exit-0 child that
    never delivered a result used to read as a silent success-shaped
    death, which the parent could misreport (e.g. as a timeout on a
    busy machine).  The non-zero code lets the parent name the real
    failure mode.
    """
    status = 0
    try:
        value = fn(item)
        try:
            conn.send((True, value, None))
        except Exception as send_exc:
            status = RESULT_PIPE_EXIT
            try:
                conn.send((False, None,
                           "result-pipe failure: "
                           f"{type(send_exc).__name__}: {send_exc}"))
                status = 0
            except Exception:
                pass
    except BaseException as exc:  # noqa: BLE001 -- isolation is the point
        try:
            conn.send((False, None, f"{type(exc).__name__}: {exc}"))
        except Exception:
            # The error report itself could not be delivered: exiting 0
            # here would be indistinguishable from a clean run.
            status = RESULT_PIPE_EXIT
    finally:
        try:
            conn.close()
        except OSError:
            status = status or RESULT_PIPE_EXIT
    if status:
        os._exit(status)


class ParallelRunner:
    """Map a function over items, optionally across processes.

    Parameters
    ----------
    processes:
        Maximum concurrent worker processes.  ``1`` (default) runs
        serially in-process -- same results, no subprocess overhead.
    timeout:
        Per-task wall-clock limit in seconds (subprocess mode only; a
        serial run cannot preempt a task).  ``None`` disables it.
    """

    def __init__(self, processes: int = 1,
                 timeout: Optional[float] = None):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self.timeout = timeout

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any],
            items: Sequence[Any]) -> List[TaskOutcome]:
        """Run ``fn`` over ``items``; outcomes in submission order."""
        items = list(items)
        if self.processes == 1 or len(items) <= 1:
            return self._map_serial(fn, items)
        return self._map_processes(fn, items)

    # ------------------------------------------------------------------
    def _map_serial(self, fn, items) -> List[TaskOutcome]:
        rec = get_recorder()
        outcomes: List[TaskOutcome] = []
        for index, item in enumerate(items):
            start = time.perf_counter()
            with rec.span("parallel.task", cat="parallel",
                          item=str(item), index=index, mode="serial"):
                try:
                    value = fn(item)
                except Exception as exc:  # crash isolation, serial flavour
                    rec.warning("parallel.task_failed",
                                counter="parallel.task_errors",
                                item=str(item),
                                exc_type=type(exc).__name__,
                                detail=str(exc))
                    outcomes.append(TaskOutcome(
                        index=index, item=item, ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        duration=time.perf_counter() - start,
                    ))
                else:
                    rec.incr("parallel.tasks_ok")
                    outcomes.append(TaskOutcome(
                        index=index, item=item, ok=True, value=value,
                        duration=time.perf_counter() - start,
                    ))
        return outcomes

    # ------------------------------------------------------------------
    def _map_processes(self, fn, items) -> List[TaskOutcome]:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork: fn must pickle
            ctx = multiprocessing.get_context()

        results: Dict[int, TaskOutcome] = {}
        pending = list(enumerate(items))
        running: Dict[int, tuple] = {}  # index -> (proc, conn, start)

        def death_error(proc) -> str:
            """Human-readable cause for a worker that died resultless."""
            # The pipe can hit EOF a beat before the process table
            # updates; a short join makes the exit code readable.
            proc.join(timeout=1.0)
            code = proc.exitcode
            if code == RESULT_PIPE_EXIT:
                return ("result-pipe failure (worker could not deliver "
                        f"its outcome, exit code {code})")
            return f"worker died (exit code {code})"

        def reap(proc) -> None:
            """Join ``proc`` with bounded escalation.

            A terminated worker normally exits promptly, but a child
            wedged in uninterruptible state (or mid-write on a full
            pipe) must not hang the whole run: escalate to SIGKILL
            after a grace period and join unconditionally so the
            process table entry is always reclaimed.
            """
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join()

        rec = get_recorder()

        def finish(index: int, outcome: TaskOutcome) -> None:
            proc, conn, _ = running.pop(index)
            conn.close()
            reap(proc)
            results[index] = outcome
            if rec.enabled:
                dur_us = outcome.duration * 1e6
                rec.complete_event(
                    "parallel.task", max(rec.now_us() - dur_us, 0.0),
                    dur_us, cat="parallel", item=str(outcome.item),
                    index=index, ok=outcome.ok, mode="subprocess",
                )
            if outcome.timed_out:
                rec.warning("parallel.task_timeout",
                            counter="parallel.task_timeouts",
                            item=str(outcome.item))
            elif not outcome.ok:
                rec.warning("parallel.task_failed",
                            counter="parallel.task_errors",
                            item=str(outcome.item),
                            detail=outcome.error or "")
            else:
                rec.incr("parallel.tasks_ok")

        try:
            while pending or running:
                while pending and len(running) < self.processes:
                    index, item = pending.pop(0)
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    try:
                        proc = ctx.Process(
                            target=_child_main, args=(child_conn, fn, item)
                        )
                        proc.start()
                    except BaseException:
                        parent_conn.close()
                        child_conn.close()
                        raise
                    child_conn.close()
                    running[index] = (proc, parent_conn,
                                      time.perf_counter())

                progressed = False
                for index in list(running):
                    proc, conn, start = running[index]
                    elapsed = time.perf_counter() - start
                    if conn.poll(0.0):
                        try:
                            ok, value, error = conn.recv()
                        except EOFError:
                            ok, value, error = False, None, death_error(proc)
                        finish(index, TaskOutcome(
                            index=index, item=items[index], ok=ok,
                            value=value, error=error, duration=elapsed,
                        ))
                        progressed = True
                    elif self.timeout is not None and elapsed > self.timeout:
                        # Kill, then close our pipe end and join the
                        # worker (via finish): leaving either undone
                        # leaks one FD pair / zombie per timed-out
                        # task for the life of the parent process.
                        proc.terminate()
                        finish(index, TaskOutcome(
                            index=index, item=items[index], ok=False,
                            error=f"timed out after {self.timeout:.1f}s",
                            duration=elapsed, timed_out=True,
                        ))
                        progressed = True
                    elif not proc.is_alive() and not conn.poll(0.0):
                        finish(index, TaskOutcome(
                            index=index, item=items[index], ok=False,
                            error=death_error(proc),
                            duration=elapsed,
                        ))
                        progressed = True
                if not progressed and running:
                    time.sleep(0.005)
        finally:
            # Unwind on error/interrupt: no orphaned workers, no open
            # pipe ends, regardless of where the loop stopped.
            for index in list(running):
                proc, conn, _ = running.pop(index)
                proc.terminate()
                conn.close()
                reap(proc)

        return [results[i] for i in range(len(items))]


def run_per_circuit(row_fn: Callable[[str], Any],
                    circuits: Sequence[str],
                    processes: int = 1,
                    timeout: Optional[float] = None) -> List[TaskOutcome]:
    """Fan a per-circuit function out over a circuit list."""
    return ParallelRunner(processes=processes, timeout=timeout).map(
        row_fn, list(circuits)
    )


def error_row(outcome: TaskOutcome, key: str = "circuit") -> Dict[str, object]:
    """Degraded table row for a failed per-circuit task."""
    return {key: outcome.item, "error": outcome.error}
