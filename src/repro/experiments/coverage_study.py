"""Section IV claims: fault coverage and test-mode power.

Four measurements per circuit:

1. transition-fault coverage under the three application styles --
   arbitrary (enhanced scan / FLH) dominates skewed-load dominates
   broadside, the paper's Section I motivation;
2. stuck-at coverage via the two-phase fault-dropping pipeline
   (:mod:`repro.fault.atpg_flow`) -- the baseline every delay-test
   flow sits on, plus how much of it random patterns buy;
3. capture-response equality of enhanced scan and FLH over a shared
   test set -- "fault coverage for enhanced scan and FLH for a given
   test set remain unchanged";
4. scan-shift combinational energy with and without isolation --
   FLH "is equally effective in completely eliminating redundant
   switching power" (cf. Gerstendoerfer & Wunderlich's 78% figure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..fault import (
    AtpgFlow,
    AtpgFlowConfig,
    all_transition_faults,
    collapse_transition,
    compare_styles,
)
from ..testapp import apply_two_pattern, shift_power_study
from .common import SEED, circuit, styled_designs
from .report import format_table


@dataclass(frozen=True)
class CoverageStudyResult:
    """Everything Section IV claims, measured."""

    circuit: str
    coverage_by_style: Dict[str, float]
    effective_by_style: Dict[str, float]
    responses_identical: bool
    shift_saving_fraction: float
    #: Stuck-at baseline via the two-phase fault-dropping pipeline.
    stuck_coverage: float = 0.0
    stuck_n_faults: int = 0
    stuck_detected_random: int = 0   # retired by phase-1 random patterns
    stuck_podem_calls: int = 0       # phase-2 deterministic targets

    @property
    def ordering_holds(self) -> bool:
        """arbitrary >= skewed-load >= broadside."""
        c = self.effective_by_style
        return (
            c["arbitrary"] >= c["skewed-load"] - 1e-9
            and c["skewed-load"] >= c["broadside"] - 1e-9
        )

    def render(self) -> str:
        """Readable summary."""
        rows = [
            {
                "style": style,
                "coverage": round(self.coverage_by_style[style], 4),
                "effective": round(self.effective_by_style[style], 4),
            }
            for style in ("arbitrary", "skewed-load", "broadside")
        ]
        lines = [
            f"Section IV coverage study ({self.circuit})",
            format_table(rows),
            f"coverage ordering arbitrary >= skewed >= broadside: "
            f"{'YES' if self.ordering_holds else 'NO'}",
            f"enhanced-scan and FLH responses identical: "
            f"{'YES' if self.responses_identical else 'NO'}",
            f"scan-shift energy saved by isolation: "
            f"{self.shift_saving_fraction * 100.0:.1f}%",
            f"stuck-at coverage (two-phase flow): "
            f"{self.stuck_coverage:.4f} over {self.stuck_n_faults} faults "
            f"({self.stuck_detected_random} random-detected, "
            f"{self.stuck_podem_calls} PODEM calls)",
        ]
        return "\n".join(lines)


def run(circuit_name: str = "s298", seed: int = SEED,
        n_random_pairs: int = 64, n_check_tests: int = 20,
        n_shift_patterns: int = 8, backend: str = "auto",
        batch_faults="auto") -> CoverageStudyResult:
    """Run the full Section IV study on one circuit.

    ``backend``/``batch_faults`` select the fault-simulation engine for
    both the style comparison and the stuck-at flow; the rendered study
    is byte-identical across backends (pinned in the test suite).
    """
    netlist = circuit(circuit_name)
    faults = collapse_transition(netlist, all_transition_faults(netlist))
    results = compare_styles(
        netlist, faults, seed=seed, n_random_pairs=n_random_pairs,
        backend=backend, batch_faults=batch_faults,
    )

    designs = styled_designs(circuit_name)
    rng = random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    identical = True
    for _ in range(n_check_tests):
        v1 = {net: rng.randint(0, 1) for net in nets}
        v2 = {net: rng.randint(0, 1) for net in nets}
        te = apply_two_pattern(designs["enhanced"], v1, v2)
        tf = apply_two_pattern(designs["flh"], v1, v2)
        if (te.captured_state != tf.captured_state
                or te.observed_outputs != tf.observed_outputs):
            identical = False
            break

    study = shift_power_study(
        designs["scan"], designs["flh"],
        n_patterns=n_shift_patterns, seed=seed,
    )

    flow = AtpgFlow(netlist, AtpgFlowConfig(
        seed=seed, backend=backend, batch_faults=batch_faults,
    )).run()
    summary = flow.summary()

    return CoverageStudyResult(
        circuit=circuit_name,
        coverage_by_style={s: r.coverage for s, r in results.items()},
        effective_by_style={
            s: r.effective_coverage for s, r in results.items()
        },
        responses_identical=identical,
        shift_saving_fraction=study.saving_fraction,
        stuck_coverage=flow.coverage,
        stuck_n_faults=flow.n_faults,
        stuck_detected_random=int(summary["detected_random"]),
        stuck_podem_calls=flow.podem_calls,
    )


def main() -> None:
    """Print the coverage study."""
    print(run().render())


if __name__ == "__main__":
    main()
