"""Table II: comparison of delay overhead.

For every benchmark circuit: critical-path logic depth and the
percentage increase in critical-path delay under enhanced scan,
MUX-hold and FLH, plus FLH's improvement over each.

Paper headline: the MUX method is the slowest, FLH the fastest; FLH's
*delay overhead* is on average 71% smaller than enhanced scan's, and
the advantage grows as logic depth shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dft import OverheadComparison, compare_delay
from ..timing import analyze
from .common import default_circuits, styled_designs
from .parallel import error_row, run_per_circuit
from .report import format_table, mean, summary_line


@dataclass(frozen=True)
class Table2Result:
    """All rows plus the paper-style averages."""

    rows: List[Dict[str, object]]
    comparisons: List[OverheadComparison]

    @property
    def average_improvement_vs_enhanced(self) -> float:
        """Average % reduction of delay overhead vs enhanced scan."""
        return mean(
            c.improvement_vs_enhanced for c in self.comparisons
        )

    def render(self) -> str:
        """Paper-style text table."""
        body = format_table(
            self.rows, title="Table II -- comparison of delay overhead"
        )
        lines = [
            body,
            summary_line(
                "average FLH improvement in delay overhead vs enhanced (%)",
                (c.improvement_vs_enhanced for c in self.comparisons),
            ),
            summary_line(
                "average FLH improvement in delay overhead vs MUX (%)",
                (c.improvement_vs_mux for c in self.comparisons),
            ),
        ]
        return "\n".join(lines)


def _circuit_result(name: str):
    """Row + comparison for one circuit (module-level: picklable)."""
    designs = styled_designs(name)
    report = analyze(designs["scan"].netlist, designs["scan"].library)
    comparison = compare_delay(designs)
    row: Dict[str, object] = {
        "circuit": name,
        "crit_levels": report.critical_levels,
    }
    row.update(
        {k: v for k, v in comparison.as_row().items() if k != "circuit"}
    )
    return row, comparison


def run(circuits: Optional[Sequence[str]] = None,
        processes: int = 1,
        task_timeout: Optional[float] = None) -> Table2Result:
    """Run the Table II experiment (see Table I for the parallel knobs)."""
    names = list(circuits or default_circuits(2))
    rows: List[Dict[str, object]] = []
    comparisons: List[OverheadComparison] = []
    for outcome in run_per_circuit(_circuit_result, names,
                                   processes=processes,
                                   timeout=task_timeout):
        if outcome.ok:
            row, comparison = outcome.value
            rows.append(row)
            comparisons.append(comparison)
        else:
            rows.append(error_row(outcome))
    return Table2Result(rows=rows, comparisons=comparisons)


def main() -> None:
    """Print the full Table II reproduction."""
    print(run().render())


if __name__ == "__main__":
    main()
