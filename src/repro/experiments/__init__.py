"""Experiment drivers: one module per paper table / figure / claim.

Public surface::

    from repro.experiments import table1_area, table2_delay, table3_power
    from repro.experiments import table4_fanout, fig2_decay, fig4_hold
    from repro.experiments import fig5_timing, coverage_study, ablation_sizing
"""

from . import (
    ablation_sizing,
    common,
    coverage_study,
    fig2_decay,
    fig4_hold,
    fig5_timing,
    parallel,
    partial_study,
    report,
    table1_area,
    table2_delay,
    table3_power,
    table4_fanout,
    variation_quality,
)
from .parallel import ParallelRunner, TaskOutcome, run_per_circuit
from .report import format_table, summary_line

__all__ = [
    "ParallelRunner",
    "TaskOutcome",
    "ablation_sizing",
    "common",
    "coverage_study",
    "fig2_decay",
    "fig4_hold",
    "fig5_timing",
    "format_table",
    "parallel",
    "partial_study",
    "report",
    "run_per_circuit",
    "summary_line",
    "variation_quality",
    "table1_area",
    "table2_delay",
    "table3_power",
    "table4_fanout",
]
