"""Table III: comparison of power overhead during normal mode.

For every benchmark circuit: percentage increase in normal-mode power
(100 random vectors) under enhanced scan, MUX-hold and FLH.

Paper headline: FLH power is close to (sometimes below) the original
circuit -- the gating transistors never switch in normal mode, the
keepers are minimum-sized, and the supply-gating stack trims the active
leakage of the first-level gates.  The reduction in power *overhead*
versus enhanced scan is about 90% on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dft import OverheadComparison, compare_power
from .common import POWER_VECTORS, SEED, default_circuits, styled_designs
from .parallel import error_row, run_per_circuit
from .report import format_table, mean, summary_line


@dataclass(frozen=True)
class Table3Result:
    """All rows plus the paper-style averages."""

    rows: List[Dict[str, object]]
    comparisons: List[OverheadComparison]

    @property
    def average_improvement_vs_enhanced(self) -> float:
        """Average % reduction of power overhead vs enhanced scan."""
        return mean(
            c.improvement_vs_enhanced for c in self.comparisons
        )

    @property
    def circuits_below_original(self) -> List[str]:
        """Circuits whose FLH power is below the unmodified circuit."""
        return [c.circuit for c in self.comparisons if c.flh_pct < 0.0]

    def render(self) -> str:
        """Paper-style text table."""
        body = format_table(
            self.rows,
            title="Table III -- comparison of power overhead (normal mode)",
        )
        lines = [
            body,
            summary_line(
                "average FLH improvement in power overhead vs enhanced (%)",
                (c.improvement_vs_enhanced for c in self.comparisons),
            ),
            summary_line(
                "average FLH improvement in power overhead vs MUX (%)",
                (c.improvement_vs_mux for c in self.comparisons),
            ),
            "FLH below original power: "
            + (", ".join(self.circuits_below_original) or "(none)"),
        ]
        return "\n".join(lines)


def _circuit_result(args):
    """Comparison for one circuit (module-level: picklable)."""
    name, n_vectors = args
    designs = styled_designs(name)
    return compare_power(designs, n_vectors=n_vectors, seed=SEED)


def run(circuits: Optional[Sequence[str]] = None,
        n_vectors: int = POWER_VECTORS,
        processes: int = 1,
        task_timeout: Optional[float] = None) -> Table3Result:
    """Run the Table III experiment (see Table I for the parallel knobs)."""
    names = list(circuits or default_circuits(3))
    rows: List[Dict[str, object]] = []
    comparisons: List[OverheadComparison] = []
    for outcome in run_per_circuit(
            _circuit_result, [(name, n_vectors) for name in names],
            processes=processes, timeout=task_timeout):
        if outcome.ok:
            comparison = outcome.value
            comparisons.append(comparison)
            rows.append(comparison.as_row())
        else:
            rows.append({"circuit": outcome.item[0], "error": outcome.error})
    return Table3Result(rows=rows, comparisons=comparisons)


def main() -> None:
    """Print the full Table III reproduction."""
    print(run().render())


if __name__ == "__main__":
    main()
