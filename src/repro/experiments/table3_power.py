"""Table III: comparison of power overhead during normal mode.

For every benchmark circuit: percentage increase in normal-mode power
(100 random vectors) under enhanced scan, MUX-hold and FLH.

Paper headline: FLH power is close to (sometimes below) the original
circuit -- the gating transistors never switch in normal mode, the
keepers are minimum-sized, and the supply-gating stack trims the active
leakage of the first-level gates.  The reduction in power *overhead*
versus enhanced scan is about 90% on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dft import OverheadComparison, compare_power
from .common import POWER_VECTORS, SEED, default_circuits, styled_designs
from .report import format_table, summary_line


@dataclass(frozen=True)
class Table3Result:
    """All rows plus the paper-style averages."""

    rows: List[Dict[str, object]]
    comparisons: List[OverheadComparison]

    @property
    def average_improvement_vs_enhanced(self) -> float:
        """Average % reduction of power overhead vs enhanced scan."""
        return sum(
            c.improvement_vs_enhanced for c in self.comparisons
        ) / len(self.comparisons)

    @property
    def circuits_below_original(self) -> List[str]:
        """Circuits whose FLH power is below the unmodified circuit."""
        return [c.circuit for c in self.comparisons if c.flh_pct < 0.0]

    def render(self) -> str:
        """Paper-style text table."""
        body = format_table(
            self.rows,
            title="Table III -- comparison of power overhead (normal mode)",
        )
        lines = [
            body,
            summary_line(
                "average FLH improvement in power overhead vs enhanced (%)",
                (c.improvement_vs_enhanced for c in self.comparisons),
            ),
            summary_line(
                "average FLH improvement in power overhead vs MUX (%)",
                (c.improvement_vs_mux for c in self.comparisons),
            ),
            "FLH below original power: "
            + (", ".join(self.circuits_below_original) or "(none)"),
        ]
        return "\n".join(lines)


def run(circuits: Optional[Sequence[str]] = None,
        n_vectors: int = POWER_VECTORS) -> Table3Result:
    """Run the Table III experiment."""
    names = list(circuits or default_circuits(3))
    rows: List[Dict[str, object]] = []
    comparisons: List[OverheadComparison] = []
    for name in names:
        designs = styled_designs(name)
        comparison = compare_power(designs, n_vectors=n_vectors, seed=SEED)
        comparisons.append(comparison)
        rows.append(comparison.as_row())
    return Table3Result(rows=rows, comparisons=comparisons)


def main() -> None:
    """Print the full Table III reproduction."""
    print(run().render())


if __name__ == "__main__":
    main()
