"""Ablation: supply-gating transistor sizing (Section III discussion).

Sweeps a *fixed* gating width factor (disabling the per-gate slack
fitting) and records FLH's area, delay and power overheads at each
point.  Reproduces the paper's design discussion: "Larger-sized sleep
transistors ... can be used to further reduce the delay penalty.  It
increases the area overhead but does not affect the switching power of
the gates."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..dft import (
    FlhConfig,
    design_delay,
    design_power,
    insert_flh,
    total_area,
)
from .common import SEED, styled_designs
from .report import format_table

DEFAULT_FACTORS = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)


@dataclass(frozen=True)
class SizingAblationResult:
    """Overhead curves over the gating width factor."""

    circuit: str
    rows: List[Dict[str, object]]

    @property
    def delay_monotonic_down(self) -> bool:
        """Delay overhead never increases with wider gating devices."""
        values = [row["delay_ovh_%"] for row in self.rows]
        return all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    @property
    def area_monotonic_up(self) -> bool:
        """Area overhead never decreases with wider gating devices."""
        values = [row["area_ovh_%"] for row in self.rows]
        return all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def render(self) -> str:
        """Readable curve table."""
        lines = [
            f"Gating-transistor sizing ablation ({self.circuit})",
            format_table(self.rows),
            f"delay overhead monotonically falls: "
            f"{'YES' if self.delay_monotonic_down else 'NO'}",
            f"area overhead monotonically grows: "
            f"{'YES' if self.area_monotonic_up else 'NO'}",
        ]
        return "\n".join(lines)


def run(circuit_name: str = "s298",
        factors: Sequence[float] = DEFAULT_FACTORS,
        n_vectors: int = 50) -> SizingAblationResult:
    """Sweep the gating width factor on one circuit."""
    designs = styled_designs(circuit_name)
    scan = designs["scan"]
    base_area = total_area(scan)
    base_delay = design_delay(scan)
    base_power = design_power(scan, n_vectors=n_vectors, seed=SEED).total

    rows: List[Dict[str, object]] = []
    for factor in factors:
        config = FlhConfig(width_factors=(factor,))
        flh = insert_flh(scan, config)
        area = total_area(flh)
        delay = design_delay(flh)
        power = design_power(flh, n_vectors=n_vectors, seed=SEED).total
        rows.append(
            {
                "width_factor": factor,
                "area_ovh_%": round((area - base_area) / base_area * 100, 3),
                "delay_ovh_%": round(
                    (delay - base_delay) / base_delay * 100, 3
                ),
                "power_ovh_%": round(
                    (power - base_power) / base_power * 100, 3
                ),
            }
        )
    return SizingAblationResult(circuit=circuit_name, rows=rows)


def main() -> None:
    """Print the sizing ablation."""
    print(run().render())


if __name__ == "__main__":
    main()
