"""Table IV: area / combinational power before and after fanout
optimization.

Runs the Section V local fanout-reduction algorithm on the high-flip-
flop-count circuits and reports: first-level gate count before/after,
FLH area overhead before/after with the improvement percentage, and the
normal-mode combinational power before/after.

Paper headline: up to 37% (average 18%) lower FLH area overhead under an
unchanged delay constraint, with comparable combinational power; for
some circuits (s5378) the number of first-level gates drops below the
number of flip-flops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dft import FanoutOptResult, insert_scan, optimize_fanout
from ..synth import map_netlist
from .common import SEED, circuit, default_circuits
from .report import format_table, mean, summary_line


@dataclass(frozen=True)
class Table4Result:
    """All rows plus the paper-style averages."""

    rows: List[Dict[str, object]]
    results: List[FanoutOptResult]

    @property
    def average_improvement(self) -> float:
        """Average % reduction of FLH area overhead."""
        return mean(r.area_improvement_pct for r in self.results)

    @property
    def best_improvement(self) -> float:
        """Best-case % reduction (paper: up to 37%; 0.0 on no results)."""
        return max(
            (r.area_improvement_pct for r in self.results), default=0.0
        )

    @property
    def circuits_below_ff_count(self) -> List[str]:
        """Circuits ending with fewer first-level gates than flip-flops."""
        return [
            r.circuit for r in self.results
            if r.first_level_after < r.n_ffs
        ]

    def render(self) -> str:
        """Paper-style text table."""
        body = format_table(
            self.rows,
            title=(
                "Table IV -- area / power before and after fanout "
                "optimization"
            ),
        )
        lines = [
            body,
            summary_line(
                "average area-overhead improvement (%)",
                (r.area_improvement_pct for r in self.results),
            ),
            f"best improvement (%): {self.best_improvement:.1f}",
            "first-level gates below FF count: "
            + (", ".join(self.circuits_below_ff_count) or "(none)"),
        ]
        return "\n".join(lines)


def run(circuits: Optional[Sequence[str]] = None,
        n_vectors: int = 50,
        max_candidates: Optional[int] = None) -> Table4Result:
    """Run the Table IV experiment.

    ``max_candidates`` bounds the per-circuit optimization work (useful
    for quick runs; None = optimize every eligible flip-flop).
    """
    names = list(circuits or default_circuits(4))
    rows: List[Dict[str, object]] = []
    results: List[FanoutOptResult] = []
    for name in names:
        mapped = map_netlist(circuit(name))
        scan = insert_scan(mapped)
        result = optimize_fanout(
            scan,
            n_vectors=n_vectors,
            seed=SEED,
            max_candidates=max_candidates,
        )
        results.append(result)
        rows.append(result.as_row())
    return Table4Result(rows=rows, results=results)


def main() -> None:
    """Print the full Table IV reproduction."""
    print(run().render())


if __name__ == "__main__":
    main()
