"""Partial enhanced scan trade-off study (reference [3] baseline).

Sweeps the fraction of flip-flops given hold latches and measures the
area overhead / transition coverage frontier, with FLH as the final
row: full-enhanced-scan coverage below full-enhanced-scan area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..dft import insert_partial_enhanced, total_area
from ..fault import (
    STYLE_ARBITRARY,
    STYLE_PARTIAL,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
)
from .common import styled_designs
from .report import format_table

DEFAULT_FRACTIONS = (0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class PartialStudyResult:
    """Frontier rows; the last row is FLH."""

    circuit: str
    rows: List[Dict[str, object]]

    @property
    def partial_rows(self) -> List[Dict[str, object]]:
        """Only the partial-enhanced-scan sweep rows."""
        return self.rows[:-1]

    @property
    def flh_row(self) -> Dict[str, object]:
        """The FLH comparison row."""
        return self.rows[-1]

    @property
    def flh_dominates(self) -> bool:
        """FLH matches the best coverage at lower area."""
        full = self.partial_rows[-1]
        return (
            self.flh_row["coverage"] >= full["coverage"] - 1e-9
            and self.flh_row["area_ovh_%"] < full["area_ovh_%"]
        )

    def render(self) -> str:
        """Readable frontier table."""
        return "\n".join(
            [
                format_table(
                    self.rows,
                    title=(
                        f"partial enhanced scan vs FLH ({self.circuit})"
                    ),
                ),
                f"FLH dominates full enhanced scan: "
                f"{'YES' if self.flh_dominates else 'NO'}",
            ]
        )


def run(circuit_name: str = "s298",
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        n_random_pairs: int = 32, seed: int = 7) -> PartialStudyResult:
    """Run the trade-off sweep on one circuit."""
    designs = styled_designs(circuit_name)
    scan = designs["scan"]
    netlist = scan.netlist
    base_area = total_area(scan)
    faults = collapse_transition(netlist, all_transition_faults(netlist))

    rows: List[Dict[str, object]] = []
    for fraction in fractions:
        partial = insert_partial_enhanced(scan, fraction=fraction)
        engine = TransitionAtpg(
            netlist, held_state=partial.held_flip_flops, seed=seed
        )
        result = engine.generate(
            faults, style=STYLE_PARTIAL, n_random_pairs=n_random_pairs
        )
        rows.append(
            {
                "held_fraction": fraction,
                "held_ffs": len(partial.held_flip_flops),
                "area_ovh_%": round(
                    (total_area(partial) - base_area) / base_area * 100, 2
                ),
                "coverage": round(result.coverage, 4),
            }
        )

    flh = designs["flh"]
    flh_result = TransitionAtpg(netlist, seed=seed).generate(
        faults, style=STYLE_ARBITRARY, n_random_pairs=n_random_pairs
    )
    rows.append(
        {
            "held_fraction": "FLH",
            "held_ffs": len(netlist.state_inputs),
            "area_ovh_%": round(
                (total_area(flh) - base_area) / base_area * 100, 2
            ),
            "coverage": round(flh_result.coverage, 4),
        }
    )
    return PartialStudyResult(circuit=circuit_name, rows=rows)


def main() -> None:
    """Print the partial enhanced scan study."""
    print(run().render())


if __name__ == "__main__":
    main()
