"""Figure 5(b): the FLH test-application timing diagram.

Replays one complete two-pattern application on an FLH design and
renders the cycle-annotated event sequence -- scan-in of V1 with TC=0,
application of V1, held-state scan of V2, launch and rated-clock
capture -- verifying it against the canonical sequence, and that the
combinational logic never switches while either pattern is scanned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..testapp import FIG5B_SEQUENCE, ProtocolTrace, apply_two_pattern
from .common import SEED, styled_designs
from .report import format_table


@dataclass(frozen=True)
class Fig5Result:
    """Protocol trace plus conformance checks."""

    circuit: str
    trace: ProtocolTrace
    matches_canonical: bool
    isolated: bool

    def render(self) -> str:
        """Readable timing diagram."""
        rows: List[Dict[str, object]] = [
            {"cycle": cycle, "event": message}
            for cycle, message in self.trace.events
        ]
        lines = [
            f"Figure 5(b) -- FLH test application timing ({self.circuit})",
            format_table(rows),
            f"canonical sequence: {'YES' if self.matches_canonical else 'NO'}",
            "combinational logic isolated during scan: "
            + ("YES" if self.isolated else "NO"),
        ]
        return "\n".join(lines)


def run(circuit_name: str = "s298", seed: int = SEED) -> Fig5Result:
    """Run one two-pattern application and check the Fig. 5(b) sequence."""
    designs = styled_designs(circuit_name)
    flh = designs["flh"]
    rng = random.Random(seed)
    nets = list(flh.netlist.inputs) + list(flh.netlist.state_inputs)
    v1 = {net: rng.randint(0, 1) for net in nets}
    v2 = {net: rng.randint(0, 1) for net in nets}
    trace = apply_two_pattern(flh, v1, v2)
    return Fig5Result(
        circuit=circuit_name,
        trace=trace,
        matches_canonical=tuple(trace.event_messages()) == FIG5B_SEQUENCE,
        isolated=trace.shift_comb_toggles == 0,
    )


def main() -> None:
    """Print the Fig. 5(b) reproduction."""
    print(run().render())


if __name__ == "__main__":
    main()
