"""Figure 2: floating-node decay of a supply-gated first-level gate.

Transient simulation of the gated inverter chain *without* the keeper:
with SLEEP asserted and the input switching high, OUT1 decays through
subthreshold leakage, and once it passes mid-rail the following stages
draw static current and eventually flip -- the failure mode that makes
the FLH keeper necessary.

Paper observation reproduced: OUT1 falls below 600 mV well within the
100 ns scan window (a 1000-bit chain at 1 GHz takes 1 us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import units
from ..spice import DECAY_DEADLINE, DECAY_LEVEL, DecayReport, floating_decay
from .report import format_table


@dataclass(frozen=True)
class Fig2Result:
    """Measurements plus a waveform table."""

    report: DecayReport
    waveform_rows: List[Dict[str, object]]

    def render(self) -> str:
        """Readable summary plus sampled waveforms."""
        r = self.report
        decay_ns = (
            f"{r.decay_time / units.NS:.2f}" if r.decay_time is not None
            else "never"
        )
        lines = [
            "Figure 2 -- floated first-level output under supply gating",
            f"OUT1 crosses {DECAY_LEVEL:.1f} V after {decay_ns} ns "
            f"(deadline {DECAY_DEADLINE / units.NS:.0f} ns: "
            f"{'MET' if r.decays_within_deadline else 'MISSED'})",
            f"final OUT1 = {r.out1_final:.3f} V, "
            f"final OUT2 = {r.out2_final:.3f} V (state corrupted)",
            f"peak static supply current of stages 2-3 = "
            f"{r.peak_static_current * 1e6:.2f} uA",
            "",
            format_table(self.waveform_rows, title="sampled waveforms"),
        ]
        return "\n".join(lines)


def run(t_stop: float = 60 * units.NS, samples: int = 12) -> Fig2Result:
    """Run the Fig. 2 experiment and sample the waveforms."""
    report = floating_decay(t_stop=t_stop)
    result = report.result
    rows: List[Dict[str, object]] = []
    n = len(result.times)
    step = max(n // samples, 1)
    for idx in range(0, n, step):
        rows.append(
            {
                "t_ns": round(float(result.times[idx]) / units.NS, 2),
                "OUT1_V": round(float(result.voltages["out1"][idx]), 3),
                "OUT2_V": round(float(result.voltages["out2"][idx]), 3),
                "OUT3_V": round(float(result.voltages["out3"][idx]), 3),
            }
        )
    return Fig2Result(report=report, waveform_rows=rows)


def main() -> None:
    """Print the Fig. 2 reproduction."""
    print(run().render())


if __name__ == "__main__":
    main()
