"""Compiled netlist kernels: index-based flat arrays for the hot loops.

Every simulator in the repository used to walk gates through per-net
string-keyed dict lookups (``netlist.gate(name)`` + ``values[fanin]``
per pin).  This module lowers a :class:`~repro.netlist.Netlist` once
into flat parallel arrays -- integer opcodes and integer fanin indices
-- that the logic simulator, the fault simulator's cone re-evaluation
and STA arrival propagation all share:

* value slot ``i`` holds the word for net ``names[i]``; primary inputs
  come first, then state inputs (DFF outputs), then every combinational
  gate in topological order;
* eval node ``p`` computes slot ``n_prefix + p`` from ``ops[p]`` and
  ``fanins[p]`` (indices into the value array);
* fanout cones are cached per fault site as tuples of eval positions,
  already topologically sorted (position order *is* topological order).

Compiled forms are cached process-wide, keyed on a **content hash** of
the netlist (name, port order, and every gate record), so repeated
construction of simulators over the same circuit -- the common shape of
the table experiments -- compiles exactly once.  Mutating a netlist
changes its hash, which simply misses the cache; stale entries are only
dropped via :func:`clear_compile_cache`.
"""

from __future__ import annotations

import hashlib
import sys
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from ..obs import get_recorder
from .netlist import Netlist
from .graph import topological_order

# Generic n-ary opcodes (match COMBINATIONAL_FUNCS).
OP_AND = 0
OP_NAND = 1
OP_OR = 2
OP_NOR = 3
OP_XOR = 4
OP_XNOR = 5
OP_NOT = 6
OP_BUF = 7
OP_AOI21 = 8
OP_AOI22 = 9
OP_OAI21 = 10
OP_OAI22 = 11
OP_MUX2 = 12
# Two-input specializations (the overwhelmingly common case after
# technology mapping) -- generic code + _TWO_INPUT_OFFSET.
_TWO_INPUT_OFFSET = 20
OP_AND2 = 20
OP_NAND2 = 21
OP_OR2 = 22
OP_NOR2 = 23
OP_XOR2 = 24
OP_XNOR2 = 25

_OPCODES = {
    "AND": OP_AND,
    "NAND": OP_NAND,
    "OR": OP_OR,
    "NOR": OP_NOR,
    "XOR": OP_XOR,
    "XNOR": OP_XNOR,
    "NOT": OP_NOT,
    "BUF": OP_BUF,
    "AOI21": OP_AOI21,
    "AOI22": OP_AOI22,
    "OAI21": OP_OAI21,
    "OAI22": OP_OAI22,
    "MUX2": OP_MUX2,
}


def content_hash(netlist: Netlist) -> str:
    """Stable content hash of a netlist's structure.

    Covers the design name, port declaration order and every gate
    record (name, function, fanin order, cell binding).  Two netlists
    with the same hash simulate identically; any structural mutation --
    adding a gate, rewiring a pin, remapping a cell -- changes the hash,
    which is what keys the compile cache.
    """
    h = hashlib.sha256()
    h.update(netlist.name.encode())
    h.update(b"\x00I")
    for net in netlist.inputs:
        h.update(net.encode() + b"\x00")
    h.update(b"\x00O")
    for net in netlist.outputs:
        h.update(net.encode() + b"\x00")
    h.update(b"\x00G")
    for name in sorted(netlist.gate_names()):
        gate = netlist.gate(name)
        record = "|".join(
            (gate.name, gate.func, ",".join(gate.fanin), gate.cell or "")
        )
        h.update(record.encode() + b"\x00")
    return h.hexdigest()


class CompiledNetlist:
    """Flat-array lowering of one netlist's combinational core.

    Instances are immutable snapshots: they reflect the netlist at
    compile time and are safe to share between simulators (the compile
    cache hands the same object to every consumer).
    """

    def __init__(self, netlist: Netlist):
        self.name = netlist.name
        self.key = content_hash(netlist)

        dffs = netlist.dffs()
        self.dff_names: Tuple[str, ...] = tuple(g.name for g in dffs)
        self.dff_data: Tuple[str, ...] = tuple(g.fanin[0] for g in dffs)
        self.inputs: Tuple[str, ...] = tuple(netlist.inputs)

        #: Combinational gates in dependency order.
        self.order: Tuple[str, ...] = tuple(topological_order(netlist))
        prefix = list(self.inputs) + list(self.dff_names)
        self.n_inputs = len(self.inputs)
        self.n_prefix = len(prefix)
        self.names: Tuple[str, ...] = tuple(prefix) + self.order
        self.index: Dict[str, int] = {
            name: i for i, name in enumerate(self.names)
        }
        if len(self.index) != len(self.names):
            raise NetlistError(
                f"{self.name}: duplicate net names in compile prefix"
            )

        ops: List[int] = []
        fanins: List[Tuple[int, ...]] = []
        index = self.index
        for name in self.order:
            gate = netlist.gate(name)
            op = _OPCODES[gate.func]
            try:
                fanin = tuple(index[f] for f in gate.fanin)
            except KeyError as exc:
                raise NetlistError(
                    f"{self.name}: gate {name!r} fanin net {exc.args[0]!r} "
                    f"has no driver"
                ) from exc
            if len(fanin) == 2 and op <= OP_XNOR:
                op += _TWO_INPUT_OFFSET
            ops.append(op)
            fanins.append(fanin)
        self.ops: Tuple[int, ...] = tuple(ops)
        self.fanins: Tuple[Tuple[int, ...], ...] = tuple(fanins)

        self.observe_idx: Tuple[int, ...] = tuple(
            self.index[net] for net in
            tuple(netlist.outputs) + tuple(g.fanin[0] for g in dffs)
        )
        self.dff_data_idx: Tuple[int, ...] = tuple(
            self.index[net] for net in self.dff_data
        )

        # Fanout adjacency: value slot -> eval positions reading it.
        fanout_pos: List[List[int]] = [[] for _ in range(len(self.names))]
        for pos, fanin in enumerate(self.fanins):
            for f in set(fanin):
                fanout_pos[f].append(pos)
        self._fanout_pos: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(p) for p in fanout_pos
        )
        self._cone_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def new_values(self, fill: int = 0) -> List[int]:
        """A fresh value array (one slot per net)."""
        return [fill] * len(self.names)

    def values_from(self, mapping) -> List[int]:
        """Value array seeded from a full net -> word mapping."""
        try:
            return [mapping[name] for name in self.names]
        except KeyError as exc:
            raise NetlistError(
                f"{self.name}: no value for net {exc.args[0]!r}"
            ) from exc

    def to_mapping(self, values: Sequence[int]) -> Dict[str, int]:
        """Net -> word dict view of a value array."""
        return dict(zip(self.names, values))

    # ------------------------------------------------------------------
    def cone_positions(self, slot: int) -> Tuple[int, ...]:
        """Eval positions in the combinational fanout cone of ``slot``.

        Sorted ascending, which *is* topological order; cached per site
        for the lifetime of the compiled netlist.
        """
        cached = self._cone_cache.get(slot)
        if cached is not None:
            return cached
        fanout_pos = self._fanout_pos
        base = self.n_prefix
        seen = set()
        stack = [slot]
        while stack:
            s = stack.pop()
            for pos in fanout_pos[s]:
                if pos not in seen:
                    seen.add(pos)
                    stack.append(base + pos)
        cone = tuple(sorted(seen))
        self._cone_cache[slot] = cone
        return cone

    def cone_names(self, net: str) -> Tuple[str, ...]:
        """Topologically sorted gate names downstream of ``net``."""
        order = self.order
        return tuple(order[pos] for pos in self.cone_positions(self.index[net]))

    # ------------------------------------------------------------------
    def eval_into(self, values: List[int], mask: int,
                  positions: Optional[Iterable[int]] = None) -> List[int]:
        """Evaluate eval nodes in place over packed bit-parallel words.

        ``values`` is a full value array whose prefix slots (primary and
        state inputs) are already filled.  With ``positions`` (a sorted
        iterable of eval positions) only that subset is re-evaluated --
        the fault simulator's cone propagation; the default evaluates
        the entire combinational core.  Results are bit-identical to
        :func:`repro.netlist.evaluate_gate` over the same gates.
        """
        ops = self.ops
        fanins = self.fanins
        base = self.n_prefix
        if positions is None:
            positions = range(len(ops))
        for p in positions:
            fanin = fanins[p]
            op = ops[p]
            if op == OP_NAND2:
                v = mask & ~(values[fanin[0]] & values[fanin[1]])
            elif op == OP_NOR2:
                v = mask & ~(values[fanin[0]] | values[fanin[1]])
            elif op == OP_AND2:
                v = values[fanin[0]] & values[fanin[1]]
            elif op == OP_OR2:
                v = values[fanin[0]] | values[fanin[1]]
            elif op == OP_NOT:
                v = mask & ~values[fanin[0]]
            elif op == OP_XOR2:
                v = values[fanin[0]] ^ values[fanin[1]]
            elif op == OP_XNOR2:
                v = mask & ~(values[fanin[0]] ^ values[fanin[1]])
            elif op == OP_BUF:
                v = values[fanin[0]]
            elif op == OP_AOI21:
                v = mask & ~((values[fanin[0]] & values[fanin[1]])
                             | values[fanin[2]])
            elif op == OP_AOI22:
                v = mask & ~((values[fanin[0]] & values[fanin[1]])
                             | (values[fanin[2]] & values[fanin[3]]))
            elif op == OP_OAI21:
                v = mask & ~((values[fanin[0]] | values[fanin[1]])
                             & values[fanin[2]])
            elif op == OP_OAI22:
                v = mask & ~((values[fanin[0]] | values[fanin[1]])
                             & (values[fanin[2]] | values[fanin[3]]))
            elif op == OP_MUX2:
                sel = values[fanin[0]]
                v = ((values[fanin[1]] & ~sel)
                     | (values[fanin[2]] & sel)) & mask
            elif op == OP_AND:
                v = mask
                for f in fanin:
                    v &= values[f]
            elif op == OP_NAND:
                v = mask
                for f in fanin:
                    v &= values[f]
                v = mask & ~v
            elif op == OP_OR:
                v = 0
                for f in fanin:
                    v |= values[f]
            elif op == OP_NOR:
                v = 0
                for f in fanin:
                    v |= values[f]
                v = mask & ~v
            elif op == OP_XOR:
                v = 0
                for f in fanin:
                    v ^= values[f]
            else:  # OP_XNOR
                v = 0
                for f in fanin:
                    v ^= values[f]
                v = mask & ~v
            values[base + p] = v
        return values

    # ------------------------------------------------------------------
    def eval3_into(self, values0: List[int], values1: List[int], mask: int,
                   positions: Optional[Iterable[int]] = None,
                   events: Optional[set] = None) -> None:
        """Three-valued (0/1/X) evaluation over two packed words per net.

        The encoding is two parallel value arrays: bit *i* of
        ``values0[slot]`` set means net ``names[slot]`` is 0 in pattern
        *i*; the same bit of ``values1[slot]`` means 1; neither set
        means X.  (``values0 & values1 == 0`` is an invariant the
        kernel preserves.)  The results are bit-identical to
        :func:`repro.fault.podem.eval3` applied per pattern -- the
        retained dict-based reference, pinned by
        ``tests/fault/test_atpg_flow.py`` on every catalog circuit.

        ``positions`` restricts evaluation to a sorted subset of eval
        positions (a fanout cone), exactly like :meth:`eval_into`.

        ``events`` switches on *event-driven* propagation: it must be a
        set of value-slot indices whose words just changed (typically
        the one assigned input).  A position none of whose fanins are
        in ``events`` is skipped outright, and a position whose
        recomputed pair equals the stored pair does not extend
        ``events`` -- so implication work is proportional to the nets
        that actually change, not to the cone size.  The set is updated
        in place with every slot whose value changed.
        """
        ops = self.ops
        fanins = self.fanins
        base = self.n_prefix
        if positions is None:
            positions = range(len(ops))
        for p in positions:
            fanin = fanins[p]
            if events is not None:
                for f in fanin:
                    if f in events:
                        break
                else:
                    continue
            op = ops[p]
            if op >= _TWO_INPUT_OFFSET:
                a, b = fanin
                a0 = values0[a]
                a1 = values1[a]
                b0 = values0[b]
                b1 = values1[b]
                if op == OP_NAND2:
                    v1 = a0 | b0
                    v0 = a1 & b1
                elif op == OP_NOR2:
                    v0 = a1 | b1
                    v1 = a0 & b0
                elif op == OP_AND2:
                    v1 = a1 & b1
                    v0 = a0 | b0
                elif op == OP_OR2:
                    v1 = a1 | b1
                    v0 = a0 & b0
                else:
                    known = (a0 | a1) & (b0 | b1)
                    parity = a1 ^ b1
                    if op == OP_XOR2:
                        v1 = parity & known
                        v0 = known & ~parity & mask
                    else:  # OP_XNOR2
                        v0 = parity & known
                        v1 = known & ~parity & mask
            elif op == OP_NOT:
                f = fanin[0]
                v0 = values1[f]
                v1 = values0[f]
            elif op == OP_BUF:
                f = fanin[0]
                v0 = values0[f]
                v1 = values1[f]
            elif op == OP_AND or op == OP_NAND:
                v1 = mask
                v0 = 0
                for f in fanin:
                    v1 &= values1[f]
                    v0 |= values0[f]
                if op == OP_NAND:
                    v0, v1 = v1, v0
            elif op == OP_OR or op == OP_NOR:
                v1 = 0
                v0 = mask
                for f in fanin:
                    v1 |= values1[f]
                    v0 &= values0[f]
                if op == OP_NOR:
                    v0, v1 = v1, v0
            elif op == OP_XOR or op == OP_XNOR:
                known = mask
                parity = 0
                for f in fanin:
                    known &= values0[f] | values1[f]
                    parity ^= values1[f]
                if op == OP_XOR:
                    v1 = parity & known
                    v0 = known & ~parity & mask
                else:
                    v0 = parity & known
                    v1 = known & ~parity & mask
            elif op == OP_AOI21:
                x, y, z = fanin
                t1 = values1[x] & values1[y]
                t0 = values0[x] | values0[y]
                v0 = t1 | values1[z]
                v1 = t0 & values0[z]
            elif op == OP_AOI22:
                x, y, z, w = fanin
                t1 = values1[x] & values1[y]
                t0 = values0[x] | values0[y]
                u1 = values1[z] & values1[w]
                u0 = values0[z] | values0[w]
                v0 = t1 | u1
                v1 = t0 & u0
            elif op == OP_OAI21:
                x, y, z = fanin
                t1 = values1[x] | values1[y]
                t0 = values0[x] & values0[y]
                v0 = t1 & values1[z]
                v1 = t0 | values0[z]
            elif op == OP_OAI22:
                x, y, z, w = fanin
                t1 = values1[x] | values1[y]
                t0 = values0[x] & values0[y]
                u1 = values1[z] | values1[w]
                u0 = values0[z] & values0[w]
                v0 = t1 & u1
                v1 = t0 | u0
            else:  # OP_MUX2
                s, d0, d1 = fanin
                s0 = values0[s]
                s1 = values1[s]
                v1 = ((s0 & values1[d0]) | (s1 & values1[d1])
                      | (values1[d0] & values1[d1]))
                v0 = ((s0 & values0[d0]) | (s1 & values0[d1])
                      | (values0[d0] & values0[d1]))
            slot = base + p
            if events is not None:
                if values0[slot] == v0 and values1[slot] == v1:
                    continue
                events.add(slot)
            values0[slot] = v0
            values1[slot] = v1

    # ------------------------------------------------------------------
    def propagate3(self, values0: List[int], values1: List[int], mask: int,
                   seeds: Iterable[int], skip: int = -1,
                   trail: Optional[List[Tuple[int, int, int]]] = None,
                   ) -> None:
        """Worklist form of :meth:`eval3_into`: re-implicate from seeds.

        ``seeds`` are value-slot indices whose words just changed (the
        assigned input, or a forced fault site).  A min-heap over eval
        positions -- position order is topological order -- visits only
        positions whose support actually changed, each at most once,
        and an unchanged recomputed pair cuts propagation there.  This
        is what makes PODEM's per-decision implication proportional to
        the nets that change, not to the fanout-cone size.

        ``skip`` excludes one eval position from recomputation (the
        faulty machine's forced site).  ``trail`` collects
        ``(slot, old0, old1)`` undo records for every overwritten slot,
        so a backtracking caller can restore state without
        re-propagating.  Final values are bit-identical to
        :meth:`eval3_into` over the seeds' full fanout cones.
        """
        ops = self.ops
        fanins = self.fanins
        fanout_pos = self._fanout_pos
        base = self.n_prefix
        heap: List[int] = []
        pending = set()
        for s in seeds:
            for p in fanout_pos[s]:
                if p != skip and p not in pending:
                    pending.add(p)
                    heappush(heap, p)
        while heap:
            p = heappop(heap)
            pending.discard(p)
            fanin = fanins[p]
            op = ops[p]
            if op >= _TWO_INPUT_OFFSET:
                a, b = fanin
                a0 = values0[a]
                a1 = values1[a]
                b0 = values0[b]
                b1 = values1[b]
                if op == OP_NAND2:
                    v1 = a0 | b0
                    v0 = a1 & b1
                elif op == OP_NOR2:
                    v0 = a1 | b1
                    v1 = a0 & b0
                elif op == OP_AND2:
                    v1 = a1 & b1
                    v0 = a0 | b0
                elif op == OP_OR2:
                    v1 = a1 | b1
                    v0 = a0 & b0
                else:
                    known = (a0 | a1) & (b0 | b1)
                    parity = a1 ^ b1
                    if op == OP_XOR2:
                        v1 = parity & known
                        v0 = known & ~parity & mask
                    else:  # OP_XNOR2
                        v0 = parity & known
                        v1 = known & ~parity & mask
            elif op == OP_NOT:
                f = fanin[0]
                v0 = values1[f]
                v1 = values0[f]
            elif op == OP_BUF:
                f = fanin[0]
                v0 = values0[f]
                v1 = values1[f]
            elif op == OP_AND or op == OP_NAND:
                v1 = mask
                v0 = 0
                for f in fanin:
                    v1 &= values1[f]
                    v0 |= values0[f]
                if op == OP_NAND:
                    v0, v1 = v1, v0
            elif op == OP_OR or op == OP_NOR:
                v1 = 0
                v0 = mask
                for f in fanin:
                    v1 |= values1[f]
                    v0 &= values0[f]
                if op == OP_NOR:
                    v0, v1 = v1, v0
            elif op == OP_XOR or op == OP_XNOR:
                known = mask
                parity = 0
                for f in fanin:
                    known &= values0[f] | values1[f]
                    parity ^= values1[f]
                if op == OP_XOR:
                    v1 = parity & known
                    v0 = known & ~parity & mask
                else:
                    v0 = parity & known
                    v1 = known & ~parity & mask
            elif op == OP_AOI21:
                x, y, z = fanin
                t1 = values1[x] & values1[y]
                t0 = values0[x] | values0[y]
                v0 = t1 | values1[z]
                v1 = t0 & values0[z]
            elif op == OP_AOI22:
                x, y, z, w = fanin
                t1 = values1[x] & values1[y]
                t0 = values0[x] | values0[y]
                u1 = values1[z] & values1[w]
                u0 = values0[z] | values0[w]
                v0 = t1 | u1
                v1 = t0 & u0
            elif op == OP_OAI21:
                x, y, z = fanin
                t1 = values1[x] | values1[y]
                t0 = values0[x] & values0[y]
                v0 = t1 & values1[z]
                v1 = t0 | values0[z]
            elif op == OP_OAI22:
                x, y, z, w = fanin
                t1 = values1[x] | values1[y]
                t0 = values0[x] & values0[y]
                u1 = values1[z] | values1[w]
                u0 = values0[z] & values0[w]
                v0 = t1 & u1
                v1 = t0 | u0
            else:  # OP_MUX2
                s, d0, d1 = fanin
                s0 = values0[s]
                s1 = values1[s]
                v1 = ((s0 & values1[d0]) | (s1 & values1[d1])
                      | (values1[d0] & values1[d1]))
                v0 = ((s0 & values0[d0]) | (s1 & values0[d1])
                      | (values0[d0] & values0[d1]))
            slot = base + p
            if values0[slot] == v0 and values1[slot] == v1:
                continue
            if trail is not None:
                trail.append((slot, values0[slot], values1[slot]))
            values0[slot] = v0
            values1[slot] = v1
            for q in fanout_pos[slot]:
                if q != skip and q not in pending:
                    pending.add(q)
                    heappush(heap, q)

    def __repr__(self) -> str:
        return (
            f"CompiledNetlist({self.name!r}: {self.n_prefix} inputs, "
            f"{len(self.ops)} eval nodes, hash {self.key[:12]})"
        )


# ----------------------------------------------------------------------
# process-wide compile cache (memory tier) + persistent disk tier
# ----------------------------------------------------------------------
_COMPILE_CACHE: Dict[str, CompiledNetlist] = {}
_CACHE_HITS = 0
_CACHE_MISSES = 0
_DISK_HITS = 0
_DISK_MISSES = 0

#: Bump whenever :class:`CompiledNetlist`'s attribute layout changes:
#: disk entries pickled under an older schema then read as misses
#: instead of resurrecting a wrong-shaped object.
COMPILED_CACHE_SCHEMA = 1

_DISK_TIER = None  # lazily built; rebuilt if the cache root moves


def _disk_tier():
    """The disk cache for compiled netlists, or ``None`` if disabled.

    Rebuilt whenever ``REPRO_CACHE_DIR``/``REPRO_DISK_CACHE`` change
    between calls (tests repoint the root per-fixture; long-lived
    processes pay one ``getenv`` per compile-cache miss).
    """
    global _DISK_TIER
    from ..cache import DiskCache, default_cache_root, disk_cache_enabled

    if not disk_cache_enabled():
        return None
    root = default_cache_root()
    if _DISK_TIER is None or _DISK_TIER.root != root:
        _DISK_TIER = DiskCache("compiled", COMPILED_CACHE_SCHEMA,
                               root=root)
    return _DISK_TIER


def compile_netlist(netlist: Netlist, use_cache: bool = True) -> CompiledNetlist:
    """Compiled form of ``netlist``, from the content-hash cache if possible.

    The hash is recomputed on every call (O(gates), far cheaper than a
    compile), so a netlist mutated since its last compilation naturally
    misses and recompiles -- the cache can never serve a stale lowering.

    Lookup order: in-process memory tier, then the persistent disk
    tier (:mod:`repro.cache`), then an actual compile whose result is
    published to both tiers.  The disk tier is what lets a fresh
    process -- a repeated experiment run, a CI job, a sharded
    fault-simulation worker -- skip recompilation entirely.
    """
    global _CACHE_HITS, _CACHE_MISSES, _DISK_HITS, _DISK_MISSES
    rec = get_recorder()
    if not use_cache:
        with rec.span("compile.netlist", cat="compile",
                      circuit=netlist.name, cached=False):
            return CompiledNetlist(netlist)
    key = content_hash(netlist)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        _CACHE_HITS += 1
        rec.incr("compile.memory_hits")
        return cached
    _CACHE_MISSES += 1
    rec.incr("compile.memory_misses")
    disk = _disk_tier()
    if disk is not None:
        loaded = disk.get(key)
        if isinstance(loaded, CompiledNetlist) and loaded.key == key:
            _DISK_HITS += 1
            rec.incr("compile.disk_hits")
            _COMPILE_CACHE[key] = loaded
            return loaded
        _DISK_MISSES += 1
        rec.incr("compile.disk_misses")
    with rec.span("compile.netlist", cat="compile",
                  circuit=netlist.name, key=key[:12]):
        compiled = CompiledNetlist(netlist)
    _COMPILE_CACHE[key] = compiled
    if disk is not None:
        disk.put(key, compiled)
    return compiled


def clear_compile_cache(disk: bool = False) -> None:
    """Drop every cached compiled netlist (frees cone caches too).

    With ``disk=True`` the persistent tier is purged as well -- the
    honest cold-start configuration for benchmarks.
    """
    global _CACHE_HITS, _CACHE_MISSES, _DISK_HITS, _DISK_MISSES
    _COMPILE_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
    _DISK_HITS = 0
    _DISK_MISSES = 0
    # The wide engine memoizes level plans per compiled netlist; those
    # are keyed off this cache's content hashes, so drop them together.
    # Looked up via sys.modules because repro.netlist.wide needs numpy.
    wide = sys.modules.get("repro.netlist.wide")
    if wide is not None:
        wide.clear_plan_cache()
    if disk:
        tier = _disk_tier()
        if tier is not None:
            tier.clear()


def compile_cache_info() -> Dict[str, int]:
    """Cache statistics: entries, hits, misses (for tests and the bench).

    ``hits``/``misses`` count the in-process memory tier;
    ``disk_hits``/``disk_misses`` count the persistent tier (only
    consulted on memory misses).  ``disk_entries``/``disk_bytes``
    report what is currently on disk (0 when the tier is disabled).
    """
    info = {
        "entries": len(_COMPILE_CACHE),
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
        "disk_hits": _DISK_HITS,
        "disk_misses": _DISK_MISSES,
        "disk_entries": 0,
        "disk_bytes": 0,
    }
    tier = _disk_tier()
    if tier is not None:
        disk_info = tier.info()
        info["disk_entries"] = disk_info["entries"]
        info["disk_bytes"] = disk_info["bytes"]
    return info
