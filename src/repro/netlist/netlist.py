"""Mutable gate-level netlist container.

The :class:`Netlist` follows the ISCAS89 net naming convention: every net
is driven by exactly one :class:`~repro.netlist.gate.Gate` whose name *is*
the net name.  Primary inputs are stored as pseudo-gates with function
``INPUT`` so that every net in the design has a driver record, which keeps
the traversal code free of special cases.

Netlists are mutable -- design-for-test transforms add gates and rewire
pins -- but every mutation goes through a method that keeps the fanout
index coherent, so lookups stay O(1) throughout.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import NetlistError
from .gate import Gate


class Netlist:
    """A single-clock sequential gate-level netlist.

    Parameters
    ----------
    name:
        Design name (e.g. ``"s27"``).

    Notes
    -----
    The combinational *core* of the design is the netlist with every DFF
    output treated as a pseudo primary input (a *state input*) and every
    DFF data pin treated as a pseudo primary output (a *state output*).
    Most analyses (ATPG, STA, fault simulation) operate on that core.
    """

    def __init__(self, name: str):
        if not name:
            raise NetlistError("netlist name must be non-empty")
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._fanout: Dict[str, Set[str]] = {}
        #: Source provenance, filled in by parsers that track it: the
        #: file the netlist was read from and the 1-based source line of
        #: each gate/input definition.  Lint diagnostics cite these.
        self.source_file: Optional[str] = None
        self.source_lines: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        """Declare a primary input net."""
        if net in self._gates:
            raise NetlistError(f"net {net!r} already driven")
        self._gates[net] = Gate(net, "INPUT")
        self._inputs.append(net)
        self._fanout.setdefault(net, set())

    def add_output(self, net: str) -> None:
        """Declare a net as a primary output (it may be driven later)."""
        if net in self._outputs:
            raise NetlistError(f"duplicate primary output {net!r}")
        self._outputs.append(net)

    def add_gate(self, gate: Gate) -> None:
        """Add a gate; its fanin nets need not exist yet."""
        if gate.name in self._gates:
            raise NetlistError(f"net {gate.name!r} already driven")
        self._gates[gate.name] = gate
        self._fanout.setdefault(gate.name, set())
        for net in gate.fanin:
            self._fanout.setdefault(net, set()).add(gate.name)

    def add(self, name: str, func: str, fanin: Iterable[str] = (),
            cell: Optional[str] = None) -> Gate:
        """Convenience wrapper building and adding a :class:`Gate`."""
        gate = Gate(name, func, tuple(fanin), cell)
        self.add_gate(gate)
        return gate

    def remove_gate(self, name: str) -> Gate:
        """Remove a gate.  The driven net must have no remaining fanout
        and must not be a primary output."""
        gate = self._gates.get(name)
        if gate is None:
            raise NetlistError(f"no gate named {name!r}")
        if self._fanout.get(name):
            raise NetlistError(f"net {name!r} still has fanout")
        if name in self._outputs:
            raise NetlistError(f"net {name!r} is a primary output")
        del self._gates[name]
        self._fanout.pop(name, None)
        if gate.is_input:
            self._inputs.remove(name)
        for net in gate.fanin:
            sinks = self._fanout.get(net)
            if sinks is not None:
                sinks.discard(name)
        return gate

    def replace_gate(self, gate: Gate) -> None:
        """Swap in a new definition for an existing gate name."""
        old = self._gates.get(gate.name)
        if old is None:
            raise NetlistError(f"no gate named {gate.name!r}")
        if old.is_input and not gate.is_input:
            self._inputs.remove(gate.name)
        if gate.is_input and not old.is_input:
            self._inputs.append(gate.name)
        for net in old.fanin:
            if net not in gate.fanin:
                sinks = self._fanout.get(net)
                if sinks is not None:
                    sinks.discard(gate.name)
        self._gates[gate.name] = gate
        for net in gate.fanin:
            self._fanout.setdefault(net, set()).add(gate.name)

    def rewire_pin(self, gate_name: str, pin_index: int, new_net: str) -> None:
        """Reconnect one fanin pin of ``gate_name`` to ``new_net``."""
        gate = self.gate(gate_name)
        if not 0 <= pin_index < gate.n_inputs:
            raise NetlistError(
                f"{gate_name!r} has no pin {pin_index} (arity {gate.n_inputs})"
            )
        fanin = list(gate.fanin)
        fanin[pin_index] = new_net
        self.replace_gate(gate.with_fanin(fanin))

    def redirect_fanout(self, old_net: str, new_net: str,
                        only: Optional[Set[str]] = None) -> int:
        """Move sinks of ``old_net`` onto ``new_net``.

        Parameters
        ----------
        only:
            If given, only sinks in this set are moved.

        Returns
        -------
        int
            Number of pin connections moved.
        """
        moved = 0
        for sink_name in sorted(self.fanout(old_net)):
            if only is not None and sink_name not in only:
                continue
            sink = self.gate(sink_name)
            fanin = [new_net if net == old_net else net for net in sink.fanin]
            moved += sum(1 for net in sink.fanin if net == old_net)
            self.replace_gate(sink.with_fanin(fanin))
        return moved

    def fresh_net(self, stem: str) -> str:
        """Return a net name derived from ``stem`` that is not yet used."""
        if stem not in self._gates:
            return stem
        i = 1
        while f"{stem}_{i}" in self._gates:
            i += 1
        return f"{stem}_{i}"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary input nets in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Primary output nets in declaration order."""
        return tuple(self._outputs)

    def gate(self, name: str) -> Gate:
        """Driver gate of net ``name`` (raises if undriven)."""
        gate = self._gates.get(name)
        if gate is None:
            raise NetlistError(f"no gate named {name!r}")
        return gate

    def has_net(self, name: str) -> bool:
        """True if a driver record exists for ``name``."""
        return name in self._gates

    def gates(self) -> Iterator[Gate]:
        """Iterate over every gate record, including INPUT pseudo-gates."""
        return iter(self._gates.values())

    def gate_names(self) -> Iterator[str]:
        """Iterate over all driven net names."""
        return iter(self._gates.keys())

    def combinational_gates(self) -> List[Gate]:
        """All logic gates (no INPUT markers, no DFFs)."""
        return [g for g in self._gates.values() if g.is_combinational]

    def dffs(self) -> List[Gate]:
        """All flip-flops in insertion order."""
        return [g for g in self._gates.values() if g.is_dff]

    def fanout(self, net: str) -> Set[str]:
        """Names of the gates whose fanin contains ``net`` (a copy)."""
        return set(self._fanout.get(net, ()))

    def fanout_count(self, net: str) -> int:
        """Number of gate sinks of ``net`` (PO connections not counted)."""
        return len(self._fanout.get(net, ()))

    # -- derived views ---------------------------------------------------
    @property
    def state_inputs(self) -> Tuple[str, ...]:
        """DFF output nets: the pseudo primary inputs of the comb. core."""
        return tuple(g.name for g in self.dffs())

    @property
    def state_outputs(self) -> Tuple[str, ...]:
        """DFF data nets: the pseudo primary outputs of the comb. core."""
        return tuple(g.fanin[0] for g in self.dffs())

    @property
    def core_inputs(self) -> Tuple[str, ...]:
        """Primary inputs followed by state inputs."""
        return self.inputs + self.state_inputs

    @property
    def core_outputs(self) -> Tuple[str, ...]:
        """Primary outputs followed by state outputs."""
        return self.outputs + self.state_outputs

    def n_gates(self) -> int:
        """Number of combinational logic gates."""
        return sum(1 for g in self._gates.values() if g.is_combinational)

    def n_dffs(self) -> int:
        """Number of flip-flops."""
        return sum(1 for g in self._gates.values() if g.is_dff)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep-enough copy (gates are immutable, containers are fresh)."""
        other = Netlist(name or self.name)
        other._inputs = list(self._inputs)
        other._outputs = list(self._outputs)
        other._gates = dict(self._gates)
        other._fanout = {net: set(sinks) for net, sinks in self._fanout.items()}
        other.source_file = self.source_file
        other.source_lines = dict(self.source_lines)
        return other

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, net: str) -> bool:
        return net in self._gates

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}: {len(self._inputs)} PI, "
            f"{len(self._outputs)} PO, {self.n_dffs()} DFF, "
            f"{self.n_gates()} gates)"
        )
