"""Gate-level netlist model and graph algorithms.

Public surface::

    from repro.netlist import Netlist, Gate, evaluate_gate
    from repro.netlist import topological_order, levelize, logic_depth
    from repro.netlist import first_level_gates, validate, collect_stats
"""

from .compiled import (
    CompiledNetlist,
    clear_compile_cache,
    compile_cache_info,
    compile_netlist,
    content_hash,
)
from .gate import ALL_FUNCS, COMBINATIONAL_FUNCS, Gate, evaluate_gate
from .graph import (
    fanout_cone,
    first_level_gates,
    gate_level_order,
    is_acyclic,
    levelize,
    logic_depth,
    reached_outputs,
    topological_order,
    total_state_fanout,
    transitive_fanin,
)
from .netlist import Netlist
from .serialize import from_dict, from_json, to_dict, to_json
from .stats import NetlistStats, collect_stats
from .validate import validate, validation_issues

__all__ = [
    "ALL_FUNCS",
    "COMBINATIONAL_FUNCS",
    "CompiledNetlist",
    "clear_compile_cache",
    "compile_cache_info",
    "compile_netlist",
    "content_hash",
    "Gate",
    "Netlist",
    "NetlistStats",
    "collect_stats",
    "evaluate_gate",
    "fanout_cone",
    "first_level_gates",
    "from_dict",
    "from_json",
    "gate_level_order",
    "is_acyclic",
    "levelize",
    "logic_depth",
    "reached_outputs",
    "to_dict",
    "to_json",
    "topological_order",
    "total_state_fanout",
    "transitive_fanin",
    "validate",
    "validation_issues",
]
