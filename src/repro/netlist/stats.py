"""Summary statistics of a netlist.

These are the structural quantities the paper reports alongside its
results: flip-flop count, total and unique state-input fanouts (Table I)
and critical-path logic depth (Table II).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from .graph import first_level_gates, logic_depth, total_state_fanout
from .netlist import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Structural summary of a sequential netlist."""

    name: str
    n_inputs: int
    n_outputs: int
    n_dffs: int
    n_gates: int
    total_state_fanout: int
    unique_first_level: int
    logic_depth: int
    func_histogram: Dict[str, int]

    @property
    def fanout_per_ff(self) -> float:
        """Average state-input fanout per flip-flop (paper avg: 2.3)."""
        if self.n_dffs == 0:
            return 0.0
        return self.total_state_fanout / self.n_dffs

    @property
    def unique_fanout_ratio(self) -> float:
        """Unique first-level gates per flip-flop (paper avg: 1.8)."""
        if self.n_dffs == 0:
            return 0.0
        return self.unique_first_level / self.n_dffs

    def as_row(self) -> Dict[str, object]:
        """Flat dict for tabular reports."""
        return {
            "circuit": self.name,
            "PI": self.n_inputs,
            "PO": self.n_outputs,
            "FF": self.n_dffs,
            "gates": self.n_gates,
            "total_fanout": self.total_state_fanout,
            "unique_fanout": self.unique_first_level,
            "ratio": round(self.unique_fanout_ratio, 2),
            "depth": self.logic_depth,
        }


def collect_stats(netlist: Netlist) -> NetlistStats:
    """Compute a :class:`NetlistStats` for ``netlist``."""
    histogram = Counter(
        gate.func for gate in netlist.gates() if gate.is_combinational
    )
    return NetlistStats(
        name=netlist.name,
        n_inputs=len(netlist.inputs),
        n_outputs=len(netlist.outputs),
        n_dffs=netlist.n_dffs(),
        n_gates=netlist.n_gates(),
        total_state_fanout=total_state_fanout(netlist),
        unique_first_level=len(first_level_gates(netlist)),
        logic_depth=logic_depth(netlist),
        func_histogram=dict(histogram),
    )
