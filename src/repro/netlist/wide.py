"""Numpy wide-batch evaluation engine over the compiled flat arrays.

The packed-int kernels in :mod:`repro.netlist.compiled` carry one
arbitrary-width Python integer per net, so a whole pattern set rides in
one value.  This module is the multi-word counterpart: values live in a
contiguous ``(n_slots, n_words)`` uint64 array (bit *i* of word *w* is
pattern ``64*w + i``), and evaluation runs as sliced array operations
over the same flat opcode/fanin arrays.

Two structural ideas make the engine fast on large circuits:

* **One shared level plan per netlist.**  Evaluation positions are
  grouped by logic level, and inside a level sorted by ``(op, arity)``
  so each homogeneous run evaluates as a single fancy-indexed numpy
  expression.  There are no per-fault-cone plans to build or store --
  the full-core plan is scanned for every fault.

* **Changed-set pruning.**  Per-fault cone re-evaluation keeps a
  boolean ``changed`` vector and only evaluates gates with at least one
  changed fanin (``logical_or.reduceat`` over the level's concatenated
  pin array).  A gate whose re-evaluated words equal the good-machine
  words is marked unchanged, so masked fault effects die instead of
  re-evaluating the whole structural cone.  The packed-int kernels
  always evaluate the full cone; on circuits 10-100x beyond s38584
  (where cones are huge and fault effects narrow) this is where the
  wide backend pulls ahead.

Results are **bit-identical** to the integer kernels: same excitation
check, same observation-point order, same early-exit contract
(:mod:`repro.fault.fsim` pins this on every catalog circuit).

This module imports numpy at module scope; callers go through
:mod:`repro.fault.backends`, which degrades to the integer kernels when
the import fails.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..obs import get_recorder
from . import compiled as _c
from .compiled import CompiledNetlist

#: Level plans and observe orders memoized per compiled netlist (keyed
#: on the content hash, so engines built by different simulators over
#: the same circuit share one plan instead of rebuilding it per
#: ``simulate_*`` call).  Cleared alongside the compile cache.
_PLAN_CACHE: Dict[str, Tuple[List[tuple], "np.ndarray"]] = {}


def clear_plan_cache() -> None:
    """Drop every memoized level plan / observe order."""
    _PLAN_CACHE.clear()

#: Opcode classes sharing one evaluation expression.
_AND_OPS = frozenset({_c.OP_AND, _c.OP_NAND, _c.OP_AND2, _c.OP_NAND2})
_OR_OPS = frozenset({_c.OP_OR, _c.OP_NOR, _c.OP_OR2, _c.OP_NOR2})
_XOR_OPS = frozenset({_c.OP_XOR, _c.OP_XNOR, _c.OP_XOR2, _c.OP_XNOR2})
#: Opcodes whose raw result is complemented (within the pattern mask).
_INVERTING_OPS = frozenset({
    _c.OP_NAND, _c.OP_NAND2, _c.OP_NOR, _c.OP_NOR2, _c.OP_XNOR,
    _c.OP_XNOR2, _c.OP_NOT, _c.OP_AOI21, _c.OP_AOI22, _c.OP_OAI21,
    _c.OP_OAI22,
})


def words_per_batch(n_patterns: int) -> int:
    """Number of 64-bit words holding ``n_patterns`` pattern lanes."""
    return (n_patterns + 63) // 64


def row_from_word(word: int, n_words: int) -> "np.ndarray":
    """Packed Python int -> uint64 row (bit *i* of word *w* = lane 64w+i)."""
    return np.frombuffer(
        word.to_bytes(n_words * 8, "little"), dtype="<u8"
    ).astype(np.uint64)


def word_from_row(row: "np.ndarray") -> int:
    """uint64 row -> packed Python int (inverse of :func:`row_from_word`)."""
    return int.from_bytes(row.astype("<u8").tobytes(), "little")


class WideEngine:
    """Wide-batch simulation engine for one :class:`CompiledNetlist`.

    The engine is pattern-width agnostic: the level plan depends only on
    the circuit, while per-call state (value arrays, mask words) is
    sized by ``n_patterns``.  Build one per compiled netlist and reuse
    it across calls -- plan construction is O(gates) and runs once.
    """

    def __init__(self, compiled: CompiledNetlist):
        self.compiled = compiled
        self._plan: Optional[List[tuple]] = None
        self._observe_arr: Optional["np.ndarray"] = None

    # -- plan ----------------------------------------------------------
    def _build_plan(self) -> None:
        cached = _PLAN_CACHE.get(self.compiled.key)
        if cached is not None:
            self._plan, self._observe_arr = cached
            get_recorder().incr("wide.observe_order_hits")
            return
        compiled = self.compiled
        base = compiled.n_prefix
        ops = compiled.ops
        fanins = compiled.fanins
        level = [0] * len(compiled.names)
        by_level: Dict[int, List[int]] = {}
        for p, fanin in enumerate(fanins):
            lvl = 1 + max(level[f] for f in fanin)
            level[base + p] = lvl
            by_level.setdefault(lvl, []).append(p)
        plan = []
        for lvl in sorted(by_level):
            ps = sorted(by_level[lvl], key=lambda p: (ops[p], len(fanins[p])))
            out = np.array([base + p for p in ps], dtype=np.intp)
            pins: List[int] = []
            offsets = [0]
            for p in ps:
                pins.extend(fanins[p])
                offsets.append(len(pins))
            pin_arr = np.array(pins, dtype=np.intp)
            off_arr = np.array(offsets[:-1], dtype=np.intp)
            subgroups = []
            bounds = []
            i = 0
            while i < len(ps):
                op = ops[ps[i]]
                ar = len(fanins[ps[i]])
                j = i
                while (j < len(ps) and ops[ps[j]] == op
                       and len(fanins[ps[j]]) == ar):
                    j += 1
                fin = np.array(
                    [[fanins[p][k] for p in ps[i:j]] for k in range(ar)],
                    dtype=np.intp,
                )
                subgroups.append((op, i, fin))
                bounds.append(i)
                i = j
            bounds.append(len(ps))
            plan.append((out, pin_arr, off_arr, subgroups,
                         np.array(bounds, dtype=np.intp)))
        self._plan = plan
        self._observe_arr = np.array(compiled.observe_idx, dtype=np.intp)
        _PLAN_CACHE[compiled.key] = (self._plan, self._observe_arr)

    @property
    def plan(self) -> List[tuple]:
        if self._plan is None:
            self._build_plan()
        return self._plan

    @property
    def observe_arr(self) -> "np.ndarray":
        if self._observe_arr is None:
            self._build_plan()
        return self._observe_arr

    # -- per-call state ------------------------------------------------
    def mask_words(self, n_patterns: int) -> "np.ndarray":
        """The all-lanes mask row: ``(1 << n_patterns) - 1`` in words."""
        n_words = words_per_batch(n_patterns)
        mask = np.full(n_words, ~np.uint64(0), dtype=np.uint64)
        rem = n_patterns % 64
        if rem:
            mask[-1] = np.uint64((1 << rem) - 1)
        return mask

    def pack_prefix(self, prefix_words: Sequence[int],
                    n_patterns: int) -> "np.ndarray":
        """Value array from per-slot packed input words.

        ``prefix_words[slot]`` is the packed Python int for prefix slot
        ``slot`` (already masked to ``n_patterns`` lanes); internal
        slots start zeroed and are filled by :meth:`eval_good`.
        """
        n_words = words_per_batch(n_patterns)
        n_bytes = n_words * 8
        values = np.zeros((len(self.compiled.names), n_words),
                          dtype=np.uint64)
        for slot, word in enumerate(prefix_words):
            if word:
                values[slot] = np.frombuffer(
                    word.to_bytes(n_bytes, "little"), dtype="<u8")
        return values

    # -- evaluation ----------------------------------------------------
    def _eval_subgroup(self, values: "np.ndarray", op: int,
                       fin: "np.ndarray", maskw: "np.ndarray",
                       ) -> "np.ndarray":
        if op in _AND_OPS:
            v = np.bitwise_and.reduce(values[fin], axis=0)
        elif op in _OR_OPS:
            v = np.bitwise_or.reduce(values[fin], axis=0)
        elif op in _XOR_OPS:
            v = np.bitwise_xor.reduce(values[fin], axis=0)
        elif op == _c.OP_NOT or op == _c.OP_BUF:
            v = values[fin[0]].copy()
        elif op == _c.OP_AOI21:
            v = (values[fin[0]] & values[fin[1]]) | values[fin[2]]
        elif op == _c.OP_AOI22:
            v = ((values[fin[0]] & values[fin[1]])
                 | (values[fin[2]] & values[fin[3]]))
        elif op == _c.OP_OAI21:
            v = (values[fin[0]] | values[fin[1]]) & values[fin[2]]
        elif op == _c.OP_OAI22:
            v = ((values[fin[0]] | values[fin[1]])
                 & (values[fin[2]] | values[fin[3]]))
        elif op == _c.OP_MUX2:
            sel = values[fin[0]]
            v = ((values[fin[1]] & ~sel) | (values[fin[2]] & sel)) & maskw
        else:
            raise SimulationError(f"wide backend: unknown opcode {op}")
        if op in _INVERTING_OPS:
            # Values are always masked, so mask & ~v == v ^ maskw.
            v ^= maskw
        return v

    def eval_good(self, values: "np.ndarray", maskw: "np.ndarray") -> None:
        """Full-core good-machine evaluation, in place."""
        for out, _pins, _offs, subgroups, _bounds in self.plan:
            for op, start, fin in subgroups:
                values[out[start:start + fin.shape[1]]] = \
                    self._eval_subgroup(values, op, fin, maskw)

    # -- fault detection ----------------------------------------------
    def detect_many(
        self,
        sites: Sequence[Tuple[int, "np.ndarray", Optional["np.ndarray"]]],
        good: "np.ndarray",
        maskw: "np.ndarray",
        early_exit: bool = False,
    ) -> List[int]:
        """Detection words for a list of forced-site faults.

        ``sites`` holds ``(slot, site_row, limit_row)`` per fault: the
        site is forced to ``site_row`` and differences are observed
        under ``limit_row`` (``None`` means the full pattern mask --
        transition faults pass their launch mask here in drop mode,
        mirroring the integer kernels).  Returns one packed detection
        int per site, in order, with the :meth:`detect order
        <repro.fault.fsim.FaultSimulator.detect_stuck_arr>` contract:
        ``early_exit`` stops at the first observation point showing a
        difference.
        """
        plan = self.plan
        observe_arr = self.observe_arr
        n_words = good.shape[1]
        faulty = good.copy()
        changed = np.zeros(good.shape[0], dtype=bool)
        results: List[int] = []
        for slot, site_row, limit_row in sites:
            limit = maskw if limit_row is None else limit_row
            # Fault not excited where the good value equals the site value.
            if not ((good[slot] ^ site_row) & limit).any():
                results.append(0)
                continue
            faulty[slot] = site_row
            changed[slot] = True
            touched = [np.array([slot], dtype=np.intp)]
            for out, pins, offs, subgroups, bounds in plan:
                active = np.logical_or.reduceat(changed[pins], offs)
                if not active.any():
                    continue
                idx = np.flatnonzero(active)
                locs = np.searchsorted(idx, bounds)
                for k, (op, start, fin) in enumerate(subgroups):
                    lo, hi = locs[k], locs[k + 1]
                    if lo == hi:
                        continue
                    sel = idx[lo:hi]
                    o = out[sel]
                    v = self._eval_subgroup(faulty, op, fin[:, sel - start],
                                            maskw)
                    faulty[o] = v
                    changed[o] = (v != good[o]).any(axis=1)
                    touched.append(o)
            detected = 0
            obs_changed = changed[observe_arr]
            if obs_changed.any():
                candidates = observe_arr[np.flatnonzero(obs_changed)]
                diffs = (good[candidates] ^ faulty[candidates]) & limit
                nonzero = diffs.any(axis=1)
                if early_exit:
                    if nonzero.any():
                        detected = word_from_row(diffs[np.argmax(nonzero)])
                else:
                    acc = np.zeros(n_words, dtype=np.uint64)
                    for row in diffs[nonzero]:
                        acc |= row
                    detected = word_from_row(acc)
            results.append(detected)
            restore = np.concatenate(touched)
            faulty[restore] = good[restore]
            changed[restore] = False
        return results

    def detect_batched(
        self,
        sites: Sequence[Tuple[int, "np.ndarray", Optional["np.ndarray"]]],
        good: "np.ndarray",
        maskw: "np.ndarray",
        batch: int,
        early_exit: bool = False,
    ) -> List[int]:
        """:meth:`detect_many`, but ``batch`` faults per plan walk.

        Fault state lives in a ``(n_slots, B, n_words)`` uint64 array:
        row ``b`` of each slot is fault ``b``'s machine, good-machine
        words broadcast once per batch.  Changed-set pruning runs on
        the fault axis too: the per-level activity reduction keeps the
        full ``(gate, fault)`` matrix, and a gate is re-evaluated only
        for the fault rows whose fanins actually changed (fancy pair
        indexing), so a batch costs one plan walk plus the union of its
        active cones -- not B full dispatches, and not ``union x B``
        gate evaluations either.

        A fault's own site is never re-evaluated in its own row (its
        fanins sit strictly upstream of the fault effect), so the
        forced value survives the walk even when another fault in the
        batch drives gates through the site.

        Results are bit-identical to :meth:`detect_many` -- same
        excitation check, observation order, and early-exit contract.
        """
        if batch <= 1 or len(sites) <= 1:
            return self.detect_many(sites, good, maskw, early_exit)
        plan = self.plan
        observe_arr = self.observe_arr
        n_slots, n_words = good.shape
        b_cap = min(batch, len(sites))
        # One allocation per call; per-batch restore keeps the invariant
        # "row == good unless injected/touched" between batches.
        faulty = np.repeat(good[:, None, :], b_cap, axis=1)
        changed = np.zeros((n_slots, b_cap), dtype=bool)
        results: List[int] = []
        for start in range(0, len(sites), b_cap):
            results.extend(self._detect_one_batch(
                sites[start:start + b_cap], good, maskw,
                faulty, changed, early_exit))
        return results

    def _detect_one_batch(self, chunk, good, maskw, faulty, changed,
                          early_exit):
        n_words = good.shape[1]
        nb = len(chunk)
        fview = faulty[:, :nb]
        cview = changed[:, :nb]
        results = [0] * nb
        injected = []
        site_slots: List[int] = []
        site_cols: List[int] = []
        for b, (slot, site_row, limit_row) in enumerate(chunk):
            limit = maskw if limit_row is None else limit_row
            # Same excitation check as the per-fault path.
            if not ((good[slot] ^ site_row) & limit).any():
                continue
            fview[slot, b] = site_row
            cview[slot, b] = True
            injected.append((b, limit))
            site_slots.append(slot)
            site_cols.append(b)
        if not injected:
            return results
        touched_slots = [np.array(site_slots, dtype=np.intp)]
        touched_cols = [np.array(site_cols, dtype=np.intp)]
        for out, pins, offs, subgroups, bounds in self.plan:
            act = np.logical_or.reduceat(cview[pins], offs, axis=0)
            rows = act.any(axis=1)
            if not rows.any():
                continue
            idx = np.flatnonzero(rows)
            locs = np.searchsorted(idx, bounds)
            for k, (op, start, fin) in enumerate(subgroups):
                lo, hi = locs[k], locs[k + 1]
                if lo == hi:
                    continue
                sel = idx[lo:hi]
                gi, bi = np.nonzero(act[sel])
                fin_pairs = fin[:, sel - start][:, gi]
                v = self._eval_pairs(fview, op, fin_pairs, bi, maskw)
                o = out[sel][gi]
                fview[o, bi] = v
                cview[o, bi] = (v != good[o]).any(axis=1)
                touched_slots.append(o)
                touched_cols.append(bi)
        obs_changed = cview[self.observe_arr]
        for b, limit in injected:
            col = obs_changed[:, b]
            if col.any():
                candidates = self.observe_arr[np.flatnonzero(col)]
                diffs = (good[candidates] ^ fview[candidates, b]) & limit
                nonzero = diffs.any(axis=1)
                if early_exit:
                    if nonzero.any():
                        results[b] = word_from_row(diffs[np.argmax(nonzero)])
                else:
                    acc = np.zeros(n_words, dtype=np.uint64)
                    for row in diffs[nonzero]:
                        acc |= row
                    results[b] = word_from_row(acc)
        rs = np.concatenate(touched_slots)
        rb = np.concatenate(touched_cols)
        fview[rs, rb] = good[rs]
        cview[rs, rb] = False
        return results

    def _eval_pairs(self, values: "np.ndarray", op: int,
                    fin: "np.ndarray", cols: "np.ndarray",
                    maskw: "np.ndarray") -> "np.ndarray":
        """:meth:`_eval_subgroup` over explicit (gate, fault-row) pairs.

        ``values`` is the 3-D ``(n_slots, B, n_words)`` fault state;
        ``fin[a, p]`` names pair *p*'s fanin slot for pin *a* and
        ``cols[p]`` its fault row.  Returns ``(n_pairs, n_words)``.
        """
        if op in _AND_OPS:
            v = np.bitwise_and.reduce(values[fin, cols], axis=0)
        elif op in _OR_OPS:
            v = np.bitwise_or.reduce(values[fin, cols], axis=0)
        elif op in _XOR_OPS:
            v = np.bitwise_xor.reduce(values[fin, cols], axis=0)
        elif op == _c.OP_NOT or op == _c.OP_BUF:
            v = values[fin[0], cols].copy()
        elif op == _c.OP_AOI21:
            v = (values[fin[0], cols] & values[fin[1], cols]) \
                | values[fin[2], cols]
        elif op == _c.OP_AOI22:
            v = ((values[fin[0], cols] & values[fin[1], cols])
                 | (values[fin[2], cols] & values[fin[3], cols]))
        elif op == _c.OP_OAI21:
            v = (values[fin[0], cols] | values[fin[1], cols]) \
                & values[fin[2], cols]
        elif op == _c.OP_OAI22:
            v = ((values[fin[0], cols] | values[fin[1], cols])
                 & (values[fin[2], cols] | values[fin[3], cols]))
        elif op == _c.OP_MUX2:
            sel = values[fin[0], cols]
            v = ((values[fin[1], cols] & ~sel)
                 | (values[fin[2], cols] & sel)) & maskw
        else:
            raise SimulationError(f"wide backend: unknown opcode {op}")
        if op in _INVERTING_OPS:
            v ^= maskw
        return v
