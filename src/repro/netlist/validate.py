"""Structural validation of netlists.

Since the lint framework landed this module is a thin compatibility
wrapper: the checks themselves live in the ``NL0xx`` structural rule
pack (:mod:`repro.lint.structural`) so that ad-hoc validation, the
``python -m repro lint`` CLI, and CI all agree on one implementation.

:func:`validation_issues` still returns plain strings (every
error-severity finding, complete rather than fail-fast, because DFT
transforms are easiest to debug with the full list of dangling nets /
floating gates in one shot); use :func:`repro.lint.lint_netlist` when
you want the structured diagnostics instead.
"""

from __future__ import annotations

from typing import List

from ..errors import NetlistError
from .netlist import Netlist


def validation_issues(netlist: Netlist) -> List[str]:
    """Return a list of human-readable structural problems (empty = OK).

    Runs the structural lint pack and renders the error-severity
    findings as bare messages.  Warnings (fanout limits, unreachable
    logic) are advisory and not included -- :func:`validate` must stay
    permissive on designs that are merely suspicious.
    """
    from ..lint import lint_netlist

    report = lint_netlist(netlist, enable=["structural"])
    return [diag.message for diag in report.errors]


def validate(netlist: Netlist) -> None:
    """Raise :class:`~repro.errors.NetlistError` if the netlist is broken."""
    issues = validation_issues(netlist)
    if issues:
        summary = "; ".join(issues[:10])
        more = f" (+{len(issues) - 10} more)" if len(issues) > 10 else ""
        raise NetlistError(f"{netlist.name}: {summary}{more}")
