"""Structural validation of netlists.

:func:`validate` collects every problem it can find instead of stopping at
the first, because DFT transforms are easiest to debug with the complete
list of dangling nets / floating gates in one shot.
"""

from __future__ import annotations

from typing import List

from ..errors import NetlistError
from .graph import is_acyclic
from .netlist import Netlist


def validation_issues(netlist: Netlist) -> List[str]:
    """Return a list of human-readable structural problems (empty = OK)."""
    issues: List[str] = []

    driven = set(netlist.gate_names())
    for gate in netlist.gates():
        for net in gate.fanin:
            if net not in driven:
                issues.append(
                    f"gate {gate.name!r} references undriven net {net!r}"
                )

    for net in netlist.outputs:
        if net not in driven:
            issues.append(f"primary output {net!r} is undriven")

    for net in netlist.inputs:
        gate = netlist.gate(net)
        if not gate.is_input:
            issues.append(f"primary input {net!r} is driven by a {gate.func}")

    pos = set(netlist.outputs)
    state_outs = set(netlist.state_outputs)
    for gate in netlist.gates():
        if gate.is_input or gate.is_dff:
            continue
        if (
            not netlist.fanout(gate.name)
            and gate.name not in pos
            and gate.name not in state_outs
        ):
            issues.append(f"gate {gate.name!r} drives nothing")

    if not is_acyclic(netlist):
        issues.append("combinational core contains a cycle")

    return issues


def validate(netlist: Netlist) -> None:
    """Raise :class:`~repro.errors.NetlistError` if the netlist is broken."""
    issues = validation_issues(netlist)
    if issues:
        summary = "; ".join(issues[:10])
        more = f" (+{len(issues) - 10} more)" if len(issues) > 10 else ""
        raise NetlistError(f"{netlist.name}: {summary}{more}")
