"""Gate primitives for the generic (ISCAS89-style) netlist model.

A :class:`Gate` drives exactly one net, and that net carries the gate's
name -- the convention used by the ISCAS89 ``.bench`` format, where
``G10 = NAND(G1, G3)`` both declares the gate and names its output net.

Two special functions appear alongside the combinational ones:

``INPUT``
    a primary input (no fanin); present so every net has a driver record.
``DFF``
    a D flip-flop; its output net is a *state input* of the combinational
    core and its single fanin net is the corresponding *state output*.

After technology mapping (:mod:`repro.synth.mapper`) each combinational
gate additionally carries the name of the standard cell implementing it in
:attr:`Gate.cell`; the logical function stays evaluable either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Tuple

from ..errors import NetlistError

#: Combinational functions accepted in a generic netlist.  ``AND``/``OR``/
#: ``NAND``/``NOR``/``XOR``/``XNOR`` are n-ary (n >= 1); ``NOT``/``BUF``
#: are strictly unary.  The complex functions are produced by the mapper.
COMBINATIONAL_FUNCS = frozenset(
    {
        "AND",
        "NAND",
        "OR",
        "NOR",
        "NOT",
        "BUF",
        "XOR",
        "XNOR",
        "AOI21",
        "AOI22",
        "OAI21",
        "OAI22",
        "MUX2",
    }
)

#: Sequential / terminal functions.
SPECIAL_FUNCS = frozenset({"INPUT", "DFF"})

ALL_FUNCS = COMBINATIONAL_FUNCS | SPECIAL_FUNCS

#: Required fanin arity for functions with a fixed pin count
#: (None = any arity >= 1).
_FIXED_ARITY = {
    "NOT": 1,
    "BUF": 1,
    "INPUT": 0,
    "DFF": 1,
    "AOI21": 3,
    "AOI22": 4,
    "OAI21": 3,
    "OAI22": 4,
    "MUX2": 3,
}


def _check_arity(func: str, n_fanin: int) -> None:
    fixed = _FIXED_ARITY.get(func)
    if fixed is not None:
        if n_fanin != fixed:
            raise NetlistError(
                f"{func} requires exactly {fixed} fanin nets, got {n_fanin}"
            )
    elif n_fanin < 1:
        raise NetlistError(f"{func} requires at least one fanin net")


@dataclass(frozen=True)
class Gate:
    """One gate (or flip-flop, or primary-input marker) in a netlist.

    Parameters
    ----------
    name:
        Name of the gate and of the net it drives.
    func:
        Logical function, one of :data:`ALL_FUNCS`.
    fanin:
        Names of the nets feeding the gate, in pin order.  Pin order is
        significant for ``MUX2`` (select, d0, d1), ``AOI21`` (a1, a2, b),
        ``AOI22``/``OAI22`` (a1, a2, b1, b2) and ``OAI21`` (a1, a2, b).
    cell:
        Name of the mapped standard cell, or ``None`` before mapping.
    """

    name: str
    func: str
    fanin: Tuple[str, ...] = field(default_factory=tuple)
    cell: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("gate name must be a non-empty string")
        if self.func not in ALL_FUNCS:
            raise NetlistError(f"unknown gate function {self.func!r}")
        if not isinstance(self.fanin, tuple):
            object.__setattr__(self, "fanin", tuple(self.fanin))
        _check_arity(self.func, len(self.fanin))
        if self.name in self.fanin and self.func != "DFF":
            raise NetlistError(
                f"combinational gate {self.name!r} feeds itself directly"
            )

    # -- queries -----------------------------------------------------------
    @property
    def is_input(self) -> bool:
        """True for the primary-input marker pseudo-gate."""
        return self.func == "INPUT"

    @property
    def is_dff(self) -> bool:
        """True for a D flip-flop."""
        return self.func == "DFF"

    @property
    def is_combinational(self) -> bool:
        """True for any logic gate (i.e. not INPUT and not DFF)."""
        return self.func in COMBINATIONAL_FUNCS

    @property
    def n_inputs(self) -> int:
        """Number of fanin pins."""
        return len(self.fanin)

    # -- derivation --------------------------------------------------------
    def with_fanin(self, fanin: Iterable[str]) -> "Gate":
        """Return a copy of this gate with a different fanin tuple."""
        return replace(self, fanin=tuple(fanin))

    def with_cell(self, cell: Optional[str]) -> "Gate":
        """Return a copy of this gate bound to a standard cell."""
        return replace(self, cell=cell)

    def renamed(self, name: str) -> "Gate":
        """Return a copy of this gate (and its output net) renamed."""
        return replace(self, name=name)


def evaluate_gate(func: str, values: Tuple[int, ...], mask: int = 1) -> int:
    """Evaluate a combinational function over packed bit-parallel words.

    Each entry of ``values`` is an integer whose bits carry one pattern
    each; ``mask`` selects the active bit lanes (e.g. ``(1 << 64) - 1``
    for 64-pattern-parallel simulation).  The return value is masked.

    ``DFF`` and ``INPUT`` are not evaluable here -- sequential elements
    are advanced by the simulators, not by this function.
    """
    if func == "AND":
        out = mask
        for v in values:
            out &= v
    elif func == "NAND":
        out = mask
        for v in values:
            out &= v
        out = ~out
    elif func == "OR":
        out = 0
        for v in values:
            out |= v
    elif func == "NOR":
        out = 0
        for v in values:
            out |= v
        out = ~out
    elif func == "XOR":
        out = 0
        for v in values:
            out ^= v
    elif func == "XNOR":
        out = 0
        for v in values:
            out ^= v
        out = ~out
    elif func == "NOT":
        out = ~values[0]
    elif func == "BUF":
        out = values[0]
    elif func == "AOI21":
        a1, a2, b = values
        out = ~((a1 & a2) | b)
    elif func == "AOI22":
        a1, a2, b1, b2 = values
        out = ~((a1 & a2) | (b1 & b2))
    elif func == "OAI21":
        a1, a2, b = values
        out = ~((a1 | a2) & b)
    elif func == "OAI22":
        a1, a2, b1, b2 = values
        out = ~((a1 | a2) & (b1 | b2))
    elif func == "MUX2":
        sel, d0, d1 = values
        out = (d0 & ~sel) | (d1 & sel)
    else:
        raise NetlistError(f"cannot evaluate function {func!r}")
    return out & mask
