"""Graph algorithms over netlists.

All traversals treat the *combinational core*: primary inputs and DFF
outputs are sources, primary outputs and DFF data pins are sinks.  DFFs
therefore never appear inside a topological order -- they cut the graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set, Tuple

from ..errors import NetlistError
from .gate import Gate
from .netlist import Netlist


def topological_order(netlist: Netlist) -> List[str]:
    """Combinational gates in dependency order (fanin before fanout).

    Raises
    ------
    NetlistError
        If the combinational core contains a cycle.
    """
    indegree: Dict[str, int] = {}
    for gate in netlist.combinational_gates():
        count = 0
        for net in set(gate.fanin):  # unique: fanout decrements once per net
            driver = netlist.gate(net)
            if driver.is_combinational:
                count += 1
        indegree[gate.name] = count

    ready = deque(sorted(name for name, deg in indegree.items() if deg == 0))
    order: List[str] = []
    while ready:
        name = ready.popleft()
        order.append(name)
        for sink_name in sorted(netlist.fanout(name)):
            if sink_name in indegree:
                indegree[sink_name] -= 1
                if indegree[sink_name] == 0:
                    ready.append(sink_name)
    if len(order) != len(indegree):
        cyclic = sorted(n for n, d in indegree.items() if d > 0)
        raise NetlistError(
            f"combinational loop through {len(cyclic)} gates "
            f"(e.g. {cyclic[:5]})"
        )
    return order


def levelize(netlist: Netlist) -> Dict[str, int]:
    """Logic level of every net: sources are level 0, a gate is one more
    than its deepest fanin."""
    levels: Dict[str, int] = {net: 0 for net in netlist.core_inputs}
    for name in topological_order(netlist):
        gate = netlist.gate(name)
        levels[name] = 1 + max(
            (levels.get(net, 0) for net in gate.fanin), default=0
        )
    return levels


def logic_depth(netlist: Netlist) -> int:
    """Depth of the deepest combinational path (in gate levels)."""
    levels = levelize(netlist)
    sinks = [net for net in netlist.core_outputs if net in levels]
    if not sinks:
        return 0
    return max(levels[net] for net in sinks)


def transitive_fanin(netlist: Netlist, nets: Iterable[str]) -> Set[str]:
    """All nets on which ``nets`` combinationally depend (inclusive)."""
    seen: Set[str] = set()
    stack = list(nets)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        driver = netlist.gate(net)
        if driver.is_combinational:
            stack.extend(driver.fanin)
    return seen


def fanout_cone(netlist: Netlist, nets: Iterable[str]) -> Set[str]:
    """All combinational gates reachable downstream of ``nets``."""
    seen: Set[str] = set()
    stack = list(nets)
    while stack:
        net = stack.pop()
        for sink_name in netlist.fanout(net):
            sink = netlist.gate(sink_name)
            if sink.is_combinational and sink_name not in seen:
                seen.add(sink_name)
                stack.append(sink_name)
    return seen


def first_level_gates(netlist: Netlist,
                      sources: Iterable[str] | None = None) -> List[str]:
    """The *unique first-level gates*: combinational gates fed directly by
    a state input (scan flip-flop output).

    This is the set FLH inserts gating logic into (paper, Table I column
    "Unique fanouts").  ``sources`` defaults to all state inputs; pass a
    different net list to analyse e.g. primary-input fanout for BIST.
    """
    if sources is None:
        sources = netlist.state_inputs
    unique: Set[str] = set()
    for net in sources:
        for sink_name in netlist.fanout(net):
            if netlist.gate(sink_name).is_combinational:
                unique.add(sink_name)
    return sorted(unique)


def total_state_fanout(netlist: Netlist) -> int:
    """Total fanout connections of all state inputs (paper, Table I
    column "Total fanouts"); counts one per gate sink, with a gate
    sampled once per source but counting multiplicity across sources."""
    total = 0
    for net in netlist.state_inputs:
        for sink_name in netlist.fanout(net):
            if netlist.gate(sink_name).is_combinational:
                total += 1
    return total


def paths_through(netlist: Netlist, net: str) -> Tuple[int, int]:
    """(fanin cone size, fanout cone size) of a net -- a cheap centrality
    measure used by the synthetic benchmark generator's statistics."""
    fin = len(transitive_fanin(netlist, [net]))
    fout = len(fanout_cone(netlist, [net]))
    return fin, fout


def reached_outputs(netlist: Netlist, net: str) -> Set[str]:
    """Core outputs reachable from ``net`` through combinational logic."""
    cone = fanout_cone(netlist, [net])
    cone.add(net)
    return {out for out in netlist.core_outputs if out in cone}


def is_acyclic(netlist: Netlist) -> bool:
    """True if the combinational core has no cycles."""
    try:
        topological_order(netlist)
    except NetlistError:
        return False
    return True


def gate_level_order(netlist: Netlist) -> List[List[str]]:
    """Gates grouped by logic level, each group sorted by name."""
    levels = levelize(netlist)
    by_level: Dict[int, List[str]] = {}
    for name in topological_order(netlist):
        by_level.setdefault(levels[name], []).append(name)
    return [sorted(by_level[level]) for level in sorted(by_level)]
