"""JSON-friendly netlist serialization.

A stable dict form of a netlist (and back), for caching reconstructed
circuits, feeding external tooling, or snapshotting DFT-transformed
designs.  Round-trips exactly, including cell bindings.
"""

from __future__ import annotations

import json
from typing import Dict

from ..errors import NetlistError
from .netlist import Netlist

FORMAT_VERSION = 1


def to_dict(netlist: Netlist) -> Dict[str, object]:
    """Stable dict form of a netlist."""
    return {
        "format": FORMAT_VERSION,
        "name": netlist.name,
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "gates": [
            {
                "name": gate.name,
                "func": gate.func,
                "fanin": list(gate.fanin),
                **({"cell": gate.cell} if gate.cell else {}),
            }
            for gate in netlist.gates()
            if not gate.is_input
        ],
    }


def from_dict(data: Dict[str, object]) -> Netlist:
    """Rebuild a netlist from :func:`to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise NetlistError(
            f"unsupported netlist format {data.get('format')!r}"
        )
    netlist = Netlist(str(data["name"]))
    for net in data["inputs"]:
        netlist.add_input(net)
    for record in data["gates"]:
        netlist.add(
            record["name"],
            record["func"],
            tuple(record["fanin"]),
            cell=record.get("cell"),
        )
    for net in data["outputs"]:
        netlist.add_output(net)
    return netlist


def to_json(netlist: Netlist, indent: int = None) -> str:
    """JSON text form of a netlist."""
    return json.dumps(to_dict(netlist), indent=indent)


def from_json(text: str) -> Netlist:
    """Rebuild a netlist from :func:`to_json` output."""
    return from_dict(json.loads(text))
