"""Linear-feedback shift registers for BIST pattern generation.

Fibonacci LFSRs over primitive (or near-primitive) polynomials, plus the
weighted-random option the paper mentions ("a circuit designed with BIST
has weighted random pattern generator ... built into the circuit").
Weighting is done the classic way: AND/OR-combining k LFSR taps gives
bit probabilities of 2^-k / 1-2^-k.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError

#: Feedback tap positions (1-indexed from the output) of primitive
#: polynomials for common register widths.
PRIMITIVE_TAPS: Dict[int, Sequence[int]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    28: (28, 25),
    29: (29, 27),
    31: (31, 28),
    32: (32, 22, 2, 1),
}


def taps_for_width(width: int) -> Sequence[int]:
    """Feedback taps for ``width`` (nearest catalogued width if absent)."""
    if width in PRIMITIVE_TAPS:
        return PRIMITIVE_TAPS[width]
    candidates = [w for w in PRIMITIVE_TAPS if w >= width]
    if not candidates:
        raise SimulationError(f"no primitive polynomial for width {width}")
    return PRIMITIVE_TAPS[min(candidates)]


class Lfsr:
    """Fibonacci LFSR emitting one bit per clock."""

    def __init__(self, width: int, seed: int = 1,
                 taps: Optional[Sequence[int]] = None):
        if width < 2:
            raise SimulationError("LFSR width must be at least 2")
        self.width = width
        self.taps = tuple(taps) if taps else tuple(taps_for_width(width))
        self.reg_width = max(self.width, max(self.taps))
        mask = (1 << self.reg_width) - 1
        self.state = seed & mask
        if self.state == 0:
            self.state = 1  # the all-zero state is absorbing

    def step(self) -> int:
        """Advance one clock; returns the output bit.

        Left-shift Fibonacci form: the polynomial's leading term is the
        register's MSB, so the bit shifted out always participates in
        the feedback -- the update is invertible and the all-zero state
        unreachable from any nonzero seed.
        """
        out = (self.state >> (self.reg_width - 1)) & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        mask = (1 << self.reg_width) - 1
        self.state = ((self.state << 1) | feedback) & mask
        return out

    def bits(self, count: int) -> List[int]:
        """Next ``count`` output bits."""
        return [self.step() for _ in range(count)]

    def word(self, count: int) -> int:
        """Next ``count`` bits packed LSB-first."""
        value = 0
        for i in range(count):
            value |= self.step() << i
        return value


class WeightedLfsr:
    """LFSR with per-bit weighting.

    ``weight`` is the probability of a 1: 0.5 uses raw LFSR bits;
    0.25/0.125 AND-combine 2/3 bits; 0.75/0.875 OR-combine them.
    """

    SUPPORTED = (0.125, 0.25, 0.5, 0.75, 0.875)

    def __init__(self, width: int, seed: int = 1, weight: float = 0.5):
        if weight not in self.SUPPORTED:
            raise SimulationError(
                f"weight must be one of {self.SUPPORTED}, got {weight}"
            )
        self.lfsr = Lfsr(width, seed)
        self.weight = weight

    def step(self) -> int:
        """One weighted bit."""
        if self.weight == 0.5:
            return self.lfsr.step()
        k = 2 if self.weight in (0.25, 0.75) else 3
        raw = [self.lfsr.step() for _ in range(k)]
        combined = 1
        for bit in raw:
            combined &= bit
        if self.weight > 0.5:
            inv = 1
            for bit in raw:
                inv &= 1 - bit
            return 1 - inv  # OR of the raw bits
        return combined

    def bits(self, count: int) -> List[int]:
        """Next ``count`` weighted bits."""
        return [self.step() for _ in range(count)]


def lfsr_vectors(nets: Sequence[str], count: int, width: int = 16,
                 seed: int = 1, weight: float = 0.5) -> List[Dict[str, int]]:
    """``count`` pseudo-random vectors over ``nets`` from one LFSR."""
    gen = WeightedLfsr(width, seed, weight)
    return [
        {net: gen.step() for net in nets}
        for _ in range(count)
    ]
