"""Multiple-input signature register (output response analyzer)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import SimulationError
from .lfsr import taps_for_width


class Misr:
    """MISR compacting one parallel response word per clock."""

    def __init__(self, width: int, seed: int = 0):
        if width < 2:
            raise SimulationError("MISR width must be at least 2")
        self.width = width
        # The register's own MSB must always be a tap (leading polynomial
        # term) so the update stays a bijection even for widths where the
        # catalogue falls back to a larger polynomial.
        catalogued = {t for t in taps_for_width(width) if t <= width}
        self.taps = tuple(sorted(catalogued | {width}, reverse=True))
        self.state = seed & ((1 << width) - 1)

    def absorb(self, word: int) -> None:
        """Clock once with ``word`` on the parallel inputs.

        Left-shift form (see :meth:`repro.bist.lfsr.Lfsr.step`): the MSB
        always feeds back, so the compaction is a linear bijection of
        the state and any single-bit input difference survives to the
        signature.
        """
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        mask = (1 << self.width) - 1
        shifted = ((self.state << 1) | feedback) & mask
        self.state = (shifted ^ word) & mask

    def absorb_bits(self, bits: Sequence[int]) -> None:
        """Absorb a bit sequence as one word (LSB-first), padding/folding
        to the register width."""
        word = 0
        for i, bit in enumerate(bits):
            word ^= (bit & 1) << (i % self.width)
        self.absorb(word)

    @property
    def signature(self) -> int:
        """Current signature."""
        return self.state


def response_signature(responses: Iterable[Mapping[str, int]],
                       nets: Sequence[str], width: int = 16,
                       seed: int = 0) -> int:
    """Signature of a stream of response mappings observed on ``nets``."""
    misr = Misr(width, seed)
    for response in responses:
        misr.absorb_bits([response.get(net, 0) & 1 for net in nets])
    return misr.signature
