"""BIST: LFSR pattern generation, MISR compaction, test-per-scan flow.

Public surface::

    from repro.bist import Lfsr, WeightedLfsr, Misr, run_bist
"""

from .flow import BistResult, coverage_curve, run_bist
from .lfsr import (
    PRIMITIVE_TAPS,
    Lfsr,
    WeightedLfsr,
    lfsr_vectors,
    taps_for_width,
)
from .misr import Misr, response_signature

__all__ = [
    "BistResult",
    "Lfsr",
    "Misr",
    "PRIMITIVE_TAPS",
    "WeightedLfsr",
    "coverage_curve",
    "lfsr_vectors",
    "response_signature",
    "run_bist",
    "taps_for_width",
]
