"""Test-per-scan BIST with FLH holding (paper Section IV).

A test-per-scan BIST session: the LFSR feeds the scan chain (and, bit-
serially, the primary inputs -- which is why the paper notes FLH can
also gate the PI fanout gates), each loaded pattern is applied with one
capture clock, and the captured responses are compacted into a MISR
signature.  With FLH (or enhanced scan) the combinational logic is
isolated during all the shifting, and two-pattern (transition) BIST
becomes possible because consecutive loaded patterns are arbitrary.

:func:`run_bist` measures exactly the quantities the claims need:
stuck-at coverage of the pseudo-random session, the golden signature,
and the shift-mode combinational switching (zero under FLH).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dft.styles import DftDesign
from ..errors import SimulationError
from ..fault.fsim import FaultSimulator
from ..fault.models import StuckFault, all_stuck_faults
from ..fault.collapse import collapse_stuck
from ..power import LogicSimulator
from ..testapp.scan_chain import ScanChainSimulator
from .lfsr import WeightedLfsr
from .misr import Misr


@dataclass(frozen=True)
class BistResult:
    """Outcome of one BIST session."""

    circuit: str
    patterns: int
    signature: int
    stuck_coverage: float
    shift_comb_toggles: int
    weight: float

    def as_row(self) -> Dict[str, object]:
        """Flat dict for reports."""
        return {
            "circuit": self.circuit,
            "patterns": self.patterns,
            "signature": f"0x{self.signature:08x}",
            "stuck_coverage": round(self.stuck_coverage, 4),
            "shift_comb_toggles": self.shift_comb_toggles,
            "weight": self.weight,
        }


def run_bist(design: DftDesign, n_patterns: int = 64,
             weight: float = 0.5, lfsr_width: int = 20,
             misr_width: int = 24, seed: int = 1,
             faults: Optional[Sequence[StuckFault]] = None) -> BistResult:
    """Run a test-per-scan BIST session on a DFT design.

    Patterns go to both the scan chain and (serially) the primary
    inputs; responses (flip-flop captures plus primary outputs) feed the
    MISR.  Stuck-at coverage is fault-simulated over the applied
    patterns.
    """
    netlist = design.netlist
    chain = design.scan_chain
    if not chain:
        raise SimulationError(f"{design.name}: no scan chain for BIST")
    generator = WeightedLfsr(lfsr_width, seed, weight)
    misr = Misr(misr_width)
    shifter = ScanChainSimulator(design)
    logic = LogicSimulator(netlist)

    if faults is None:
        faults = collapse_stuck(netlist, all_stuck_faults(netlist))
    observe = list(netlist.outputs) + list(netlist.state_outputs)

    patterns: List[Dict[str, int]] = []
    shift_toggles = 0
    state = {ff: 0 for ff in chain}
    for _ in range(n_patterns):
        pattern: Dict[str, int] = {
            net: generator.step() for net in netlist.inputs
        }
        load = {ff: generator.step() for ff in chain}
        trace = shifter.shift_in(load, initial_state=state)
        shift_toggles += trace.comb_toggles
        pattern.update(load)
        patterns.append(pattern)

        values = dict(pattern)
        logic.eval_combinational(values, mask=1)
        misr.absorb_bits([values[net] & 1 for net in observe])
        # Captured response becomes the chain content to shift out.
        state = {
            ff: values[data] & 1
            for ff, data in zip(logic.dff_names, logic.dff_data)
        }

    sim = FaultSimulator(netlist)
    coverage = sim.simulate_stuck(faults, patterns).coverage
    return BistResult(
        circuit=design.name,
        patterns=n_patterns,
        signature=misr.signature,
        stuck_coverage=coverage,
        shift_comb_toggles=shift_toggles,
        weight=weight,
    )


def coverage_curve(design: DftDesign,
                   checkpoints: Sequence[int] = (16, 32, 64, 128, 256),
                   weight: float = 0.5, seed: int = 1,
                   ) -> List[Tuple[int, float]]:
    """Stuck-at coverage as a function of BIST pattern count."""
    points: List[Tuple[int, float]] = []
    for count in checkpoints:
        result = run_bist(design, n_patterns=count, weight=weight, seed=seed)
        points.append((count, result.stuck_coverage))
    return points
