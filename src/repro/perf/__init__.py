"""Performance layer: reference kernels and the benchmark harness.

Public surface::

    from repro.perf import bench_main               # python -m repro bench
    from repro.perf import ReferenceFaultSimulator  # pre-compile baseline
"""

from .bench import bench_main, run_bench
from .reference import ReferenceFaultSimulator, ReferenceLogicSimulator

__all__ = [
    "ReferenceFaultSimulator",
    "ReferenceLogicSimulator",
    "bench_main",
    "run_bench",
]
