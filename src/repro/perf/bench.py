"""``python -m repro bench``: performance harness for the tier-1 kernels.

Times the simulation kernels behind every table experiment -- good
machine logic simulation, stuck-at and transition fault simulation,
the three-valued implication kernel, the two-phase fault-dropping ATPG
flow, static timing analysis, and the table 1-3 quick flows -- and:

* verifies the compiled three-valued kernel against the dict-based
  scalar reference and the two-phase flow's coverage against the naive
  per-fault PODEM path (equal by construction when neither aborts);

* emits ``BENCH_<date>.json`` (per-kernel seconds + metadata) plus an
  aligned text table;
* verifies that the compiled stuck-at fault simulator produces
  **bit-identical** detection masks to the retained reference
  implementation, and records the measured speedup;
* with ``--check-baseline``, compares against the committed baseline
  (``benchmarks/baseline.json``) and fails only on regressions worse
  than ``--threshold`` (default 2x) -- a smoke check loose enough to
  survive machine-to-machine variance, tight enough to catch a kernel
  accidentally falling back to the slow path.

Usage::

    python -m repro bench --quick
    python -m repro bench --quick --check-baseline
    python -m repro bench --output BENCH_today.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..bench import load_circuit
from ..experiments import table1_area, table2_delay, table3_power
from ..experiments.common import clear_caches, styled_designs
from ..experiments.report import format_table
from ..fault import (
    AtpgFlow,
    AtpgFlowConfig,
    ShardedFaultSimulator,
    all_stuck_faults,
    all_transition_faults,
    collapse_stuck,
    random_pattern_words,
)
from ..fault.fsim import FaultSimulator
from ..fault.podem import X, generate_tests
from ..fault.sharded import usable_cores
from ..netlist import (
    clear_compile_cache,
    compile_cache_info,
    compile_netlist,
)
from ..obs import add_trace_argument, get_recorder, trace_session
from ..power import LogicSimulator
from ..timing import analyze
from .reference import ReferenceFaultSimulator, ReferenceThreeValuedSimulator

#: Committed baseline the smoke check compares against.
DEFAULT_BASELINE = os.path.join("benchmarks", "baseline.json")

#: Quick-mode table circuits (mirrors ``python -m repro quick``).
QUICK_CIRCUITS = ("s298", "s344", "s382")

#: Circuit used for the compiled-vs-reference fault-sim comparison:
#: the largest circuit in the catalog.
FSIM_CIRCUIT = "s38584"


def _random_patterns(netlist, n: int, seed: int) -> List[Dict[str, int]]:
    rng = random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    return [
        {net: rng.randint(0, 1) for net in nets} for _ in range(n)
    ]


def _timed(fn: Callable[[], object]) -> Dict[str, object]:
    start = time.perf_counter()
    value = fn()
    return {"seconds": time.perf_counter() - start, "value": value}


def _timed_best(fn: Callable[[], object], repeats: int = 2,
                ) -> Dict[str, object]:
    """Best-of-N timing: damps cache-warmup and scheduler noise for
    kernels whose recorded number gates a speedup floor."""
    best = None
    value = None
    for _ in range(repeats):
        t = _timed(fn)
        if best is None or t["seconds"] < best:
            best = t["seconds"]
            value = t["value"]
    return {"seconds": best, "value": value}


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def bench_logicsim(quick: bool) -> List[Dict[str, object]]:
    """Good-machine sequential simulation (the Table III inner loop)."""
    name = "s5378"
    n_vectors = 50 if quick else 200
    netlist = load_circuit(name)
    sim = LogicSimulator(netlist)
    vectors = sim.random_vectors(n_vectors)
    t = _timed(lambda: sim.run_sequential(vectors))
    return [{
        "kernel": "logicsim_sequential",
        "circuit": name,
        "n": n_vectors,
        "seconds": t["seconds"],
    }]


def bench_fsim_stuck(quick: bool) -> List[Dict[str, object]]:
    """Compiled vs reference stuck-at fault sim on the largest circuit.

    Hard-asserts that both produce identical detection masks; the
    recorded ``speedup`` is the headline number of the compile pass.
    """
    name = FSIM_CIRCUIT
    netlist = load_circuit(name)
    stride = 160 if quick else 40
    n_patterns = 32 if quick else 64
    faults = all_stuck_faults(netlist)[::stride]
    patterns = _random_patterns(netlist, n_patterns, seed=11)

    compiled_sim = FaultSimulator(netlist)
    t_compiled = _timed(lambda: compiled_sim.simulate_stuck(faults, patterns))
    reference_sim = ReferenceFaultSimulator(netlist)
    t_reference = _timed(
        lambda: reference_sim.simulate_stuck(faults, patterns)
    )

    identical = (
        t_compiled["value"].detected == t_reference["value"].detected
    )
    if not identical:
        raise AssertionError(
            f"{name}: compiled fault sim masks differ from reference"
        )
    speedup = t_reference["seconds"] / max(t_compiled["seconds"], 1e-9)
    return [
        {
            "kernel": "fsim_stuck_compiled",
            "circuit": name,
            "n": len(faults),
            "seconds": t_compiled["seconds"],
        },
        {
            "kernel": "fsim_stuck_reference",
            "circuit": name,
            "n": len(faults),
            "seconds": t_reference["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "fsim_stuck_speedup",
            "circuit": name,
            "n": len(faults),
            "seconds": None,
            "speedup": speedup,
            "identical_masks": identical,
        },
    ]


def _usable_cores() -> int:
    """CPUs this process may actually run on.

    Delegates to :func:`repro.fault.sharded.usable_cores`: the
    CPU-affinity mask clamped by the container's cgroup v1/v2 CPU
    quota, so a throttled CI runner no longer reports phantom cores
    and speedup floors waive themselves honestly.
    """
    return usable_cores()


def bench_fsim_stuck_sharded(quick: bool) -> List[Dict[str, object]]:
    """Sharded worker-pool fault sim vs the serial kernel, same circuit.

    The pool is started (forked, compiled) *outside* the timed region:
    the row measures steady-state shard throughput, which is what the
    ATPG flow's inner loop sees.  Hard-asserts bit-identical detection
    masks and equal coverage against serial.  The speedup floor only
    applies when the host exposes >= ``processes`` usable cores --
    on a smaller machine (or a constrained CI runner) real parallel
    speedup is physically impossible, so the row records the measured
    ratio with ``min_speedup: 0`` and says why in ``note``.
    """
    name = FSIM_CIRCUIT
    netlist = load_circuit(name)
    stride = 24 if quick else 8
    n_patterns = 32 if quick else 64
    processes = 4
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))[::stride]
    words = random_pattern_words(netlist, n_patterns, seed=11)

    serial_sim = FaultSimulator(netlist)
    t_serial = _timed_best(
        lambda: serial_sim.simulate_stuck_packed(faults, words, n_patterns)
    )
    with ShardedFaultSimulator(netlist, processes=processes) as pool:
        t_sharded = _timed_best(
            lambda: pool.simulate_stuck_packed(faults, words, n_patterns)
        )

    serial_result = t_serial["value"]
    sharded_result = t_sharded["value"]
    if sharded_result.detected != serial_result.detected:
        raise AssertionError(
            f"{name}: sharded fault sim masks differ from serial"
        )
    if sharded_result.coverage != serial_result.coverage:
        raise AssertionError(
            f"{name}: sharded coverage {sharded_result.coverage:.6f} != "
            f"serial {serial_result.coverage:.6f}"
        )
    speedup = t_serial["seconds"] / max(t_sharded["seconds"], 1e-9)
    cores = _usable_cores()
    enough_cores = cores >= processes
    return [
        {
            "kernel": "fsim_stuck_sharded",
            "circuit": name,
            "n": len(faults),
            "seconds": t_sharded["seconds"],
            "processes": processes,
        },
        {
            "kernel": "fsim_stuck_sharded_serial",
            "circuit": name,
            "n": len(faults),
            "seconds": t_serial["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "fsim_stuck_sharded_speedup",
            "circuit": name,
            "n": len(faults),
            "seconds": None,
            "speedup": speedup,
            "min_speedup": 2.5 if enough_cores else 0.0,
            "identical_masks": True,
            "equal_coverage": sharded_result.coverage,
            "processes": processes,
            "usable_cores": cores,
            "note": (
                f"speedup {speedup:.2f}x at {processes} workers, "
                "identical masks"
                if enough_cores else
                f"speedup {speedup:.2f}x (floor waived: {cores} usable "
                f"core(s) < {processes} workers), identical masks"
            ),
        },
    ]


def bench_fsim_numpy(quick: bool) -> List[Dict[str, object]]:
    """Numpy wide-batch fault sim vs the packed-int kernels.

    Workload: a synthetic stress circuit well beyond s38584
    (:func:`repro.bench.generator.stress_spec`) under a 4096-pattern
    batch -- the wide-batch regime the numpy backend exists for.  Both
    backends run fault-dropping mode on the same fault sample;
    full-mask mode gets its own (smaller) sample in full runs.
    Hard-asserts bit-identical detection masks; the speedup rows carry
    committed floors (measured ~2.4-3.6x on the quick workload, ~8x on
    the full one).  When numpy is not importable the rows are waived with
    ``min_speedup: 0`` -- the integer kernels are then the only
    backend, so there is nothing to compare.
    """
    from ..bench.generator import generate, stress_spec
    from ..fault.backends import numpy_available

    scale, depth, stride, floor = (
        (3, 36, 160, 1.8) if quick else (10, 48, 600, 3.0)
    )
    name = f"stress{scale}x"
    if not numpy_available():
        return [{
            "kernel": "fsim_numpy_speedup",
            "circuit": name,
            "n": 0,
            "seconds": None,
            "speedup": 0.0,
            "min_speedup": 0.0,
            "note": "floor waived: numpy not importable, int backend only",
        }]

    n_patterns = 4096
    netlist = generate(stress_spec(scale, depth=depth))
    faults = all_stuck_faults(netlist)[::stride]
    words = random_pattern_words(netlist, n_patterns, seed=11)

    int_sim = FaultSimulator(netlist, backend="int")
    # batch_faults=1 pins the per-fault wide path: this kernel measures
    # the pattern-wide engine alone; fault batching has its own group
    # (bench_fsim_batched) with its own floors.
    numpy_sim = FaultSimulator(netlist, backend="numpy", batch_faults=1)

    t_int = _timed_best(
        lambda: int_sim.simulate_stuck_packed(
            faults, words, n_patterns, drop_detected=True)
    )
    t_numpy = _timed_best(
        lambda: numpy_sim.simulate_stuck_packed(
            faults, words, n_patterns, drop_detected=True)
    )
    if t_numpy["value"].detected != t_int["value"].detected:
        raise AssertionError(
            f"{name}: numpy backend drop-mode masks differ from int"
        )
    speedup = t_int["seconds"] / max(t_numpy["seconds"], 1e-9)
    rows: List[Dict[str, object]] = [
        {
            "kernel": "fsim_numpy_drop",
            "circuit": name,
            "n": len(faults),
            "seconds": t_numpy["seconds"],
            "n_patterns": n_patterns,
        },
        {
            "kernel": "fsim_numpy_drop_int",
            "circuit": name,
            "n": len(faults),
            "seconds": t_int["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "fsim_numpy_speedup",
            "circuit": name,
            "n": len(faults),
            "seconds": None,
            "speedup": speedup,
            "min_speedup": floor,
            "identical_masks": True,
            "note": (
                f"speedup {speedup:.2f}x at {n_patterns} patterns "
                f"(drop mode), identical masks"
            ),
        },
    ]
    if not quick:
        full_faults = faults[::2]
        t_int_full = _timed_best(
            lambda: int_sim.simulate_stuck_packed(
                full_faults, words, n_patterns)
        )
        t_numpy_full = _timed_best(
            lambda: numpy_sim.simulate_stuck_packed(
                full_faults, words, n_patterns)
        )
        if t_numpy_full["value"].detected != t_int_full["value"].detected:
            raise AssertionError(
                f"{name}: numpy backend full-mask masks differ from int"
            )
        full_speedup = (
            t_int_full["seconds"] / max(t_numpy_full["seconds"], 1e-9)
        )
        rows.append({
            "kernel": "fsim_numpy_full_speedup",
            "circuit": name,
            "n": len(full_faults),
            "seconds": None,
            "speedup": full_speedup,
            "min_speedup": 2.5,
            "identical_masks": True,
            "note": (
                f"speedup {full_speedup:.2f}x at {n_patterns} patterns "
                f"(full-mask mode), identical masks"
            ),
        })
    return rows


def bench_fsim_batched(quick: bool) -> List[Dict[str, object]]:
    """Fault-batched wide engine vs the per-fault numpy path.

    Workload: a stress circuit at a 256-pattern batch -- the
    narrow-batch, many-fault regime of the two-phase ATPG random
    phase, where per-fault dispatch overhead (one plan walk per fault)
    dominates and fault batching exists to amortize it.  Both runs use
    the numpy backend; the only difference is ``batch_faults`` (1
    vs ``auto``), so the speedup isolates the batching itself.
    Hard-asserts batched masks identical to the per-fault numpy run on
    the full sample and to the integer kernels on a subsample (the
    full cross-backend identity is pinned per catalog circuit in the
    test suite).  Waived with ``min_speedup: 0`` when numpy is not
    importable.
    """
    from ..bench.generator import generate, stress_spec
    from ..fault.backends import numpy_available

    scale, depth, stride, floor = (
        (3, 36, 40, 1.5) if quick else (10, 48, 120, 2.0)
    )
    name = f"stress{scale}x"
    if not numpy_available():
        return [{
            "kernel": "fsim_batched_speedup",
            "circuit": name,
            "n": 0,
            "seconds": None,
            "speedup": 0.0,
            "min_speedup": 0.0,
            "note": "floor waived: numpy not importable, int backend only",
        }]

    n_patterns = 256
    netlist = generate(stress_spec(scale, depth=depth))
    faults = all_stuck_faults(netlist)[::stride]
    words = random_pattern_words(netlist, n_patterns, seed=11)

    per_fault = FaultSimulator(netlist, backend="numpy", batch_faults=1)
    batched = FaultSimulator(netlist, backend="numpy", batch_faults="auto")
    batch = batched._batch_for(n_patterns)

    t_pf = _timed_best(
        lambda: per_fault.simulate_stuck_packed(
            faults, words, n_patterns, drop_detected=True)
    )
    t_b = _timed_best(
        lambda: batched.simulate_stuck_packed(
            faults, words, n_patterns, drop_detected=True)
    )
    if t_b["value"].detected != t_pf["value"].detected:
        raise AssertionError(
            f"{name}: batched drop-mode masks differ from per-fault numpy"
        )
    # Cross-backend spot check against the integer kernels on a
    # subsample (a full int run at stress scale would dominate the
    # bench; full identity is pinned per catalog circuit in tests).
    sub = faults[::7]
    int_sub = FaultSimulator(netlist, backend="int").simulate_stuck_packed(
        sub, words, n_patterns, drop_detected=True)
    batched_sub = batched.simulate_stuck_packed(
        sub, words, n_patterns, drop_detected=True)
    if batched_sub.detected != int_sub.detected:
        raise AssertionError(
            f"{name}: batched drop-mode masks differ from int kernels"
        )
    speedup = t_pf["seconds"] / max(t_b["seconds"], 1e-9)
    rows: List[Dict[str, object]] = [
        {
            "kernel": "fsim_batched_drop",
            "circuit": name,
            "n": len(faults),
            "seconds": t_b["seconds"],
            "n_patterns": n_patterns,
            "batch_faults": batch,
        },
        {
            "kernel": "fsim_batched_per_fault",
            "circuit": name,
            "n": len(faults),
            "seconds": t_pf["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "fsim_batched_speedup",
            "circuit": name,
            "n": len(faults),
            "seconds": None,
            "speedup": speedup,
            "min_speedup": floor,
            "identical_masks": True,
            "note": (
                f"speedup {speedup:.2f}x over per-fault numpy at "
                f"{n_patterns} patterns, batch {batch} (drop mode), "
                f"identical masks"
            ),
        },
    ]
    if not quick:
        full_faults = faults[::3]
        t_pf_full = _timed_best(
            lambda: per_fault.simulate_stuck_packed(
                full_faults, words, n_patterns)
        )
        t_b_full = _timed_best(
            lambda: batched.simulate_stuck_packed(
                full_faults, words, n_patterns)
        )
        if t_b_full["value"].detected != t_pf_full["value"].detected:
            raise AssertionError(
                f"{name}: batched full-mask masks differ from per-fault "
                f"numpy"
            )
        full_speedup = (
            t_pf_full["seconds"] / max(t_b_full["seconds"], 1e-9)
        )
        rows.append({
            "kernel": "fsim_batched_full_speedup",
            "circuit": name,
            "n": len(full_faults),
            "seconds": None,
            "speedup": full_speedup,
            "min_speedup": 1.5,
            "identical_masks": True,
            "note": (
                f"speedup {full_speedup:.2f}x over per-fault numpy at "
                f"{n_patterns} patterns (full-mask mode), identical masks"
            ),
        })
    return rows


def bench_compile_cache(quick: bool) -> List[Dict[str, object]]:
    """Cold compile vs disk-warm reload of the largest circuit.

    Runs against a private temporary cache root so the measurement
    neither benefits from nor pollutes the user's persistent cache.
    """
    import shutil
    import tempfile

    name = FSIM_CIRCUIT
    netlist = load_circuit(name)
    tmp_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = tmp_root
    try:
        clear_compile_cache()
        t_cold = _timed(lambda: compile_netlist(netlist))
        clear_compile_cache()     # drop the memory tier, keep disk
        t_warm = _timed(lambda: compile_netlist(netlist))
        info = compile_cache_info()
        if info["disk_hits"] < 1:
            raise AssertionError(
                f"{name}: warm compile did not hit the disk cache "
                f"({info})"
            )
        if t_warm["value"].key != t_cold["value"].key:
            raise AssertionError(
                f"{name}: disk-loaded compile key differs from cold"
            )
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous
        clear_compile_cache()     # detach from the temp root
        shutil.rmtree(tmp_root, ignore_errors=True)
    return [
        {
            "kernel": "compile_cold",
            "circuit": name,
            "n": 1,
            "seconds": t_cold["seconds"],
        },
        {
            "kernel": "compile_disk_warm",
            "circuit": name,
            "n": 1,
            "seconds": t_warm["seconds"],
            "disk_hits": info["disk_hits"],
        },
    ]


def bench_fsim_transition(quick: bool) -> List[Dict[str, object]]:
    """Transition fault sim over random (V1, V2) pairs."""
    name = "s5378"
    netlist = load_circuit(name)
    stride = 40 if quick else 10
    n_pairs = 16 if quick else 48
    faults = all_transition_faults(netlist)[::stride]
    rng = random.Random(13)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    pairs = [
        (
            {net: rng.randint(0, 1) for net in nets},
            {net: rng.randint(0, 1) for net in nets},
        )
        for _ in range(n_pairs)
    ]
    sim = FaultSimulator(netlist)
    t = _timed(lambda: sim.simulate_transition(faults, pairs))
    return [{
        "kernel": "fsim_transition",
        "circuit": name,
        "n": len(faults),
        "seconds": t["seconds"],
    }]


def bench_eval3(quick: bool) -> List[Dict[str, object]]:
    """Compiled two-word three-valued evaluation vs the dict reference.

    Packs random 0/1/X input assignments into the two-word-per-net
    encoding, evaluates all patterns bit-parallel in one
    :meth:`~repro.netlist.CompiledNetlist.eval3_into` pass, and checks
    every net of every pattern against scalar whole-core dict
    re-simulation (``ReferenceThreeValuedSimulator``).
    """
    name = "s5378"
    netlist = load_circuit(name)
    compiled = compile_netlist(netlist)
    n_patterns = 16 if quick else 32
    rng = random.Random(17)
    core_inputs = compiled.names[:compiled.n_prefix]
    assignments = [
        {net: rng.choice((0, 1, X)) for net in core_inputs}
        for _ in range(n_patterns)
    ]

    def run_compiled():
        v0 = compiled.new_values()
        v1 = compiled.new_values()
        mask = (1 << n_patterns) - 1
        for i, assignment in enumerate(assignments):
            bit = 1 << i
            for slot, net in enumerate(core_inputs):
                v = assignment[net]
                if v == 0:
                    v0[slot] |= bit
                elif v == 1:
                    v1[slot] |= bit
        compiled.eval3_into(v0, v1, mask)
        return v0, v1

    t_compiled = _timed(run_compiled)
    reference = ReferenceThreeValuedSimulator(netlist)
    t_reference = _timed(
        lambda: [reference.simulate(a) for a in assignments]
    )

    v0, v1 = t_compiled["value"]
    for i, ref_values in enumerate(t_reference["value"]):
        bit = 1 << i
        for slot, net in enumerate(compiled.names):
            got = 0 if v0[slot] & bit else (1 if v1[slot] & bit else X)
            if got != ref_values[net]:
                raise AssertionError(
                    f"{name}: eval3 mismatch at net {net!r}, pattern {i}: "
                    f"compiled {got} != reference {ref_values[net]}"
                )
    speedup = t_reference["seconds"] / max(t_compiled["seconds"], 1e-9)
    return [
        {
            "kernel": "eval3_compiled",
            "circuit": name,
            "n": n_patterns,
            "seconds": t_compiled["seconds"],
        },
        {
            "kernel": "eval3_reference",
            "circuit": name,
            "n": n_patterns,
            "seconds": t_reference["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "eval3_speedup",
            "circuit": name,
            "n": n_patterns,
            "seconds": None,
            "speedup": speedup,
            "identical_values": True,
        },
    ]


def bench_atpg_flow(quick: bool) -> List[Dict[str, object]]:
    """Two-phase fault-dropping pipeline vs naive per-fault PODEM.

    Workload: the s5378 faults naive PODEM detects without aborting at
    the bench backtrack limit -- the realistic detectable-fault ATPG
    population.  Untestable and abort-bound faults cost the identical
    search on both paths, so including them only dilutes the
    pipeline-structure comparison (and makes coverage equality hinge on
    abort luck).  Hard-asserts equal final coverage; the recorded
    speedup row carries its own ``min_speedup`` floor of 5x.
    """
    name = "s5378"
    netlist = load_circuit(name)
    stride = 12 if quick else 8
    backtrack_limit = 60
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))[::stride]
    prefilter = generate_tests(netlist, faults,
                               backtrack_limit=backtrack_limit)
    workload = [r.fault for r in prefilter if r.detected]

    t_naive = _timed_best(
        lambda: generate_tests(netlist, workload,
                               backtrack_limit=backtrack_limit)
    )
    config = AtpgFlowConfig(n_random_patterns=2048 if quick else 1024,
                            batch_size=256,
                            max_idle_batches=4 if quick else 3,
                            backtrack_limit=backtrack_limit)
    t_flow = _timed_best(lambda: AtpgFlow(netlist, config).run(workload))

    naive = t_naive["value"]
    naive_coverage = (
        sum(1 for r in naive if r.detected) / len(workload)
        if workload else 0.0
    )
    flow_coverage = t_flow["value"].coverage
    if abs(naive_coverage - flow_coverage) > 1e-12:
        raise AssertionError(
            f"{name}: flow coverage {flow_coverage:.4f} != naive "
            f"coverage {naive_coverage:.4f}"
        )
    speedup = t_naive["seconds"] / max(t_flow["seconds"], 1e-9)
    return [
        {
            "kernel": "atpg_flow",
            "circuit": name,
            "n": len(workload),
            "seconds": t_flow["seconds"],
        },
        {
            "kernel": "atpg_naive",
            "circuit": name,
            "n": len(workload),
            "seconds": t_naive["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "atpg_flow_speedup",
            "circuit": name,
            "n": len(workload),
            "seconds": None,
            "speedup": speedup,
            "min_speedup": 5.0,
            "equal_coverage": flow_coverage,
        },
    ]


def bench_atpg_parallel_podem(quick: bool) -> List[Dict[str, object]]:
    """Parallel speculative PODEM phase 2 vs the serial walk.

    Workload: the s5378 *hard remainder* -- the collapsed (strided)
    fault list minus everything 256 random patterns detect -- run
    through the flow with the random phase disabled, so the timed
    region is exactly the phase-2 PODEM walk the parallel coordinator
    accelerates.  Hard-asserts equal coverage AND byte-identical
    artifacts (test list, status map, summary) between ``processes=4``
    and ``processes=1`` -- the determinism contract, not a tolerance.
    The 2.5x floor applies only when the host exposes >= 4 usable
    cores (affinity and cgroup quota both); below that the row records
    the measured ratio with ``min_speedup: 0`` and says why.
    """
    name = "s5378"
    netlist = load_circuit(name)
    stride = 24 if quick else 12
    backtrack_limit = 60
    processes = 4
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))[::stride]
    words = random_pattern_words(netlist, 256, seed=11)
    prefilter = FaultSimulator(netlist, backend="int").simulate_stuck_packed(
        faults, words, 256, drop_detected=True
    )
    hard = [f for f in faults if not prefilter.detected.get(f)]

    config = AtpgFlowConfig(n_random_patterns=0,
                            backtrack_limit=backtrack_limit,
                            backend="int")
    t_serial = _timed_best(lambda: AtpgFlow(netlist, config).run(hard))
    parallel_config = AtpgFlowConfig(n_random_patterns=0,
                                     backtrack_limit=backtrack_limit,
                                     backend="int", processes=processes)
    t_parallel = _timed_best(
        lambda: AtpgFlow(netlist, parallel_config).run(hard)
    )

    serial = t_serial["value"]
    parallel = t_parallel["value"]
    identical = (
        parallel.tests == serial.tests
        and list(parallel.status.items()) == list(serial.status.items())
        and list(parallel.detected_via.items())
        == list(serial.detected_via.items())
        and list(parallel.untestable_via.items())
        == list(serial.untestable_via.items())
        and parallel.summary() == serial.summary()
    )
    if not identical:
        raise AssertionError(
            f"{name}: parallel PODEM artifacts differ from serial "
            f"(parallel {parallel.summary()} vs serial {serial.summary()})"
        )
    if parallel.coverage != serial.coverage:
        raise AssertionError(
            f"{name}: parallel coverage {parallel.coverage:.6f} != "
            f"serial {serial.coverage:.6f}"
        )
    speedup = t_serial["seconds"] / max(t_parallel["seconds"], 1e-9)
    cores = _usable_cores()
    enough_cores = cores >= processes
    return [
        {
            "kernel": "atpg_parallel_podem",
            "circuit": name,
            "n": len(hard),
            "seconds": t_parallel["seconds"],
            "processes": processes,
        },
        {
            "kernel": "atpg_serial_podem",
            "circuit": name,
            "n": len(hard),
            "seconds": t_serial["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "atpg_parallel_podem_speedup",
            "circuit": name,
            "n": len(hard),
            "seconds": None,
            "speedup": speedup,
            "min_speedup": 2.5 if enough_cores else 0.0,
            "identical_artifacts": True,
            "equal_coverage": parallel.coverage,
            "processes": processes,
            "usable_cores": cores,
            "note": (
                f"speedup {speedup:.2f}x at {processes} workers, "
                "byte-identical artifacts"
                if enough_cores else
                f"speedup {speedup:.2f}x (floor waived: {cores} usable "
                f"core(s) < {processes} workers), byte-identical "
                f"artifacts"
            ),
        },
    ]


def bench_atpg_analysis(quick: bool) -> List[Dict[str, object]]:
    """Static-analysis-assisted ATPG vs the plain two-phase flow.

    Workload: a strided slice of the s5378 collapsed fault list,
    restricted to (a) faults both the unguided and the SCOAP-guided
    PODEM detect without aborting -- where guidance can only change
    *effort*, not outcome -- plus (b) the statically-proven-untestable
    faults, which no flow can ever detect (the prover is exhaustively
    cross-checked in the test suite), so equal final coverage holds by
    construction rather than by abort luck.  The baseline flow burns
    backtracks (or aborts) re-discovering (b) fault by fault; the
    analysis flow prunes them upfront and spends SCOAP-guided searches
    on the rest.  The recorded row gates the *effort* ratio -- total
    PODEM backtracks plus aborted faults -- with a committed 3x floor
    (measured ~8-14x).
    """
    from dataclasses import replace

    from ..analysis import TestabilityAnalyzer
    from ..fault.podem import Podem

    name = "s5378"
    netlist = load_circuit(name)
    stride = 12 if quick else 8
    backtrack_limit = 60
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))[::stride]

    analyzer = TestabilityAnalyzer(netlist, style="scan")
    static_untestable = analyzer.untestable_stuck()
    unguided = Podem(netlist, backtrack_limit)
    guided = Podem(netlist, backtrack_limit, guidance=analyzer.scores)
    workload = []
    n_untestable = 0
    for fault in faults:
        if fault in static_untestable:
            workload.append(fault)
            n_untestable += 1
        elif (unguided.generate(fault).detected
              and guided.generate(fault).detected):
            workload.append(fault)

    config = AtpgFlowConfig(n_random_patterns=2048 if quick else 1024,
                            batch_size=256,
                            max_idle_batches=4 if quick else 3,
                            backtrack_limit=backtrack_limit)
    t_plain = _timed_best(lambda: AtpgFlow(netlist, config).run(workload))
    config_analysis = replace(config, use_analysis=True)
    t_analysis = _timed_best(
        lambda: AtpgFlow(netlist, config_analysis).run(workload)
    )

    plain = t_plain["value"].summary()
    assisted = t_analysis["value"].summary()
    if plain["coverage"] != assisted["coverage"]:
        raise AssertionError(
            f"{name}: analysis flow coverage {assisted['coverage']:.4f} "
            f"!= plain flow coverage {plain['coverage']:.4f}"
        )
    effort_plain = plain["backtracks"] + plain["aborted"]
    effort_assisted = assisted["backtracks"] + assisted["aborted"]
    reduction = effort_plain / max(effort_assisted, 1)
    return [
        {
            "kernel": "atpg_analysis_flow",
            "circuit": name,
            "n": len(workload),
            "seconds": t_analysis["seconds"],
        },
        {
            "kernel": "atpg_plain_flow",
            "circuit": name,
            "n": len(workload),
            "seconds": t_plain["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "atpg_analysis_effort",
            "circuit": name,
            "n": len(workload),
            "seconds": None,
            "speedup": reduction,
            "min_speedup": 3.0,
            "equal_coverage": assisted["coverage"],
            "note": (
                f"backtracks+aborted {effort_plain} -> {effort_assisted} "
                f"({n_untestable} statically-pruned untestable, "
                f"{assisted['podem_calls']} vs {plain['podem_calls']} "
                f"PODEM calls)"
            ),
        },
    ]


def bench_sta(quick: bool) -> List[Dict[str, object]]:
    """STA arrival propagation over a mapped scan design."""
    name = "s382" if quick else "s5378"
    design = styled_designs(name)["scan"]
    n_runs = 20
    def run_sta():
        for _ in range(n_runs):
            analyze(design.netlist, design.library)
    t = _timed(run_sta)
    return [{
        "kernel": "sta_analyze",
        "circuit": name,
        "n": n_runs,
        "seconds": t["seconds"],
    }]


def bench_serve_throughput(quick: bool) -> List[Dict[str, object]]:
    """The ATPG daemon under concurrent load (warm-pool job server).

    Spins up the real server in-process (:class:`repro.serve.LocalServer`)
    and replays a catalog workload from concurrent closed-loop clients
    via the shared load generator (:func:`repro.serve.run_loadtest`) --
    submit, honor backpressure, wait, fetch the artifact.  The row's
    ``seconds`` is the wall time to complete the whole job batch;
    latency percentiles ride along in the note.  Hard-asserts zero
    client errors and zero swallowed pool errors after the drain.
    """
    from ..serve import LocalServer, run_loadtest

    name = "s298"
    clients = 4
    jobs_per_client = 2 if quick else 4
    config = {"processes": 1,
              "n_random_patterns": 64 if quick else 256}
    with LocalServer(max_queue=32) as server:
        report = run_loadtest(server.host, server.port, [name],
                              clients=clients,
                              jobs_per_client=jobs_per_client,
                              config=config)
    if report["errors"]:
        raise AssertionError(
            f"{name}: serve loadtest had {report['errors']} client "
            f"errors: {report['error_samples']}"
        )
    swallowed = server.manager.swallowed_errors()
    if swallowed:
        raise AssertionError(
            f"{name}: daemon drained with {swallowed} swallowed pool "
            f"errors"
        )
    return [{
        "kernel": "serve_throughput",
        "circuit": name,
        "n": report["completed"],
        "seconds": report["wall_seconds"],
        "clients": clients,
        "throughput_jobs_per_s": report["throughput_jobs_per_s"],
        "latency_p95_s": report["latency_p95_s"],
        "note": (
            f"{report['throughput_jobs_per_s']:.1f} jobs/s from "
            f"{clients} clients, p50 "
            f"{report['latency_p50_s'] * 1000:.0f}ms / p95 "
            f"{report['latency_p95_s'] * 1000:.0f}ms / p99 "
            f"{report['latency_p99_s'] * 1000:.0f}ms, 0 errors"
        ),
    }]


def bench_tables(quick: bool) -> List[Dict[str, object]]:
    """The table 1-3 quick experiment flows, end to end."""
    circuits = QUICK_CIRCUITS
    rows: List[Dict[str, object]] = []
    t = _timed(lambda: table1_area.run(circuits=circuits))
    rows.append({"kernel": "table1_quick", "circuit": "+".join(circuits),
                 "n": len(circuits), "seconds": t["seconds"]})
    t = _timed(lambda: table2_delay.run(circuits=circuits))
    rows.append({"kernel": "table2_quick", "circuit": "+".join(circuits),
                 "n": len(circuits), "seconds": t["seconds"]})
    t = _timed(lambda: table3_power.run(circuits=circuits, n_vectors=40))
    rows.append({"kernel": "table3_quick", "circuit": "+".join(circuits),
                 "n": len(circuits), "seconds": t["seconds"]})
    return rows


KERNEL_GROUPS = (
    bench_logicsim,
    bench_fsim_stuck,
    bench_fsim_stuck_sharded,
    bench_fsim_numpy,
    bench_fsim_batched,
    bench_compile_cache,
    bench_fsim_transition,
    bench_eval3,
    bench_atpg_flow,
    bench_atpg_parallel_podem,
    bench_atpg_analysis,
    bench_sta,
    bench_serve_throughput,
    bench_tables,
)


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def run_bench(quick: bool = True) -> Dict[str, object]:
    """Run every kernel group; returns the report dict."""
    clear_caches()
    rec = get_recorder()
    rows: List[Dict[str, object]] = []
    for group in KERNEL_GROUPS:
        with rec.span("bench.group", cat="bench", group=group.__name__,
                      quick=quick):
            rows.extend(group(quick))
    return {
        "schema": 1,
        "date": datetime.date.today().isoformat(),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "usable_cores": _usable_cores(),
        "kernels": rows,
        "compile_cache": compile_cache_info(),
    }


def render_report(report: Dict[str, object]) -> str:
    """Aligned text table of one bench run."""
    rows = []
    for row in report["kernels"]:
        rows.append({
            "kernel": row["kernel"],
            "circuit": row["circuit"],
            "n": row["n"],
            "seconds": (
                "-" if row.get("seconds") is None
                else f"{row['seconds']:.4f}"
            ),
            "note": (
                row["note"] if "note" in row else
                f"speedup {row['speedup']:.2f}x, identical results"
                if "speedup" in row else ""
            ),
        })
    title = (
        f"repro bench ({'quick' if report['quick'] else 'full'}) -- "
        f"{report['date']}, python {report['python']}"
    )
    return format_table(rows, title=title)


def check_against_baseline(report: Dict[str, object],
                           baseline_path: str,
                           threshold: float = 2.0,
                           min_speedup: float = 2.5) -> List[str]:
    """Regression check; returns a list of failure messages (empty = ok).

    A kernel fails if it is more than ``threshold`` times slower than
    the committed baseline; a speedup row (compiled vs reference, flow
    vs naive) fails if it drops below its floor -- the row's own
    ``min_speedup`` when present, else the harness-wide ``min_speedup``
    (machine-independent, since both sides run on the same host).
    """
    failures: List[str] = []
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        return [f"baseline file not found: {baseline_path}"]
    base_seconds = {
        row["kernel"]: row.get("seconds")
        for row in baseline.get("kernels", [])
    }
    for row in report["kernels"]:
        name = row["kernel"]
        if "speedup" in row:
            required = row.get("min_speedup", min_speedup)
            if row["speedup"] < required:
                failures.append(
                    f"{name}: speedup {row['speedup']:.2f}x"
                    f" < required {required:.1f}x"
                )
            continue
        if row.get("compare_only"):
            continue
        base = base_seconds.get(name)
        if base is None or row.get("seconds") is None:
            continue
        ratio = row["seconds"] / max(base, 1e-9)
        if ratio > threshold:
            failures.append(
                f"{name}: {row['seconds']:.4f}s is {ratio:.2f}x the "
                f"baseline {base:.4f}s (threshold {threshold:.1f}x)"
            )
    return failures


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro bench``."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the tier-1 simulation kernels and experiment "
                    "flows; optionally compare against the committed "
                    "baseline.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller fault samples / vector counts "
                             "(CI smoke configuration)")
    parser.add_argument("--output", default=None,
                        help="output JSON path (default BENCH_<date>.json)")
    parser.add_argument("--check-baseline", action="store_true",
                        help="compare against the committed baseline and "
                             "exit non-zero on a >threshold regression")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON path (default {DEFAULT_BASELINE})")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="failure threshold as a slowdown ratio "
                             "(default 2.0)")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="minimum compiled/reference fault-sim speedup "
                             "(default 2.5)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="also (re)write the baseline file from this run")
    add_trace_argument(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)

    manifest_extra: Dict[str, object] = {"quick": args.quick}
    with trace_session(args.trace, "bench", argv=list(argv or []),
                       extra=manifest_extra):
        report = run_bench(quick=args.quick)
        manifest_extra["kernels"] = [
            {k: row.get(k) for k in ("kernel", "seconds", "speedup")
             if k in row}
            for row in report["kernels"]
        ]
    print(render_report(report))

    output = args.output or f"BENCH_{report['date']}.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\n[written to {output}]")

    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"[baseline refreshed at {args.baseline}]")

    if args.check_baseline:
        failures = check_against_baseline(
            report, args.baseline,
            threshold=args.threshold, min_speedup=args.min_speedup,
        )
        if failures:
            print("\nBASELINE CHECK FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"\nbaseline check ok (threshold {args.threshold:.1f}x, "
              f"min speedup {args.min_speedup:.1f}x)")
    return 0
