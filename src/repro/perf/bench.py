"""``python -m repro bench``: performance harness for the tier-1 kernels.

Times the simulation kernels behind every table experiment -- good
machine logic simulation, stuck-at and transition fault simulation,
static timing analysis, and the table 1-3 quick flows -- and:

* emits ``BENCH_<date>.json`` (per-kernel seconds + metadata) plus an
  aligned text table;
* verifies that the compiled stuck-at fault simulator produces
  **bit-identical** detection masks to the retained reference
  implementation, and records the measured speedup;
* with ``--check-baseline``, compares against the committed baseline
  (``benchmarks/baseline.json``) and fails only on regressions worse
  than ``--threshold`` (default 2x) -- a smoke check loose enough to
  survive machine-to-machine variance, tight enough to catch a kernel
  accidentally falling back to the slow path.

Usage::

    python -m repro bench --quick
    python -m repro bench --quick --check-baseline
    python -m repro bench --output BENCH_today.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..bench import load_circuit
from ..experiments import table1_area, table2_delay, table3_power
from ..experiments.common import clear_caches, styled_designs
from ..experiments.report import format_table
from ..fault import all_stuck_faults, all_transition_faults
from ..fault.fsim import FaultSimulator
from ..power import LogicSimulator
from ..timing import analyze
from .reference import ReferenceFaultSimulator

#: Committed baseline the smoke check compares against.
DEFAULT_BASELINE = os.path.join("benchmarks", "baseline.json")

#: Quick-mode table circuits (mirrors ``python -m repro quick``).
QUICK_CIRCUITS = ("s298", "s344", "s382")

#: Circuit used for the compiled-vs-reference fault-sim comparison:
#: the largest circuit in the catalog.
FSIM_CIRCUIT = "s38584"


def _random_patterns(netlist, n: int, seed: int) -> List[Dict[str, int]]:
    rng = random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    return [
        {net: rng.randint(0, 1) for net in nets} for _ in range(n)
    ]


def _timed(fn: Callable[[], object]) -> Dict[str, object]:
    start = time.perf_counter()
    value = fn()
    return {"seconds": time.perf_counter() - start, "value": value}


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def bench_logicsim(quick: bool) -> List[Dict[str, object]]:
    """Good-machine sequential simulation (the Table III inner loop)."""
    name = "s5378"
    n_vectors = 50 if quick else 200
    netlist = load_circuit(name)
    sim = LogicSimulator(netlist)
    vectors = sim.random_vectors(n_vectors)
    t = _timed(lambda: sim.run_sequential(vectors))
    return [{
        "kernel": "logicsim_sequential",
        "circuit": name,
        "n": n_vectors,
        "seconds": t["seconds"],
    }]


def bench_fsim_stuck(quick: bool) -> List[Dict[str, object]]:
    """Compiled vs reference stuck-at fault sim on the largest circuit.

    Hard-asserts that both produce identical detection masks; the
    recorded ``speedup`` is the headline number of the compile pass.
    """
    name = FSIM_CIRCUIT
    netlist = load_circuit(name)
    stride = 160 if quick else 40
    n_patterns = 32 if quick else 64
    faults = all_stuck_faults(netlist)[::stride]
    patterns = _random_patterns(netlist, n_patterns, seed=11)

    compiled_sim = FaultSimulator(netlist)
    t_compiled = _timed(lambda: compiled_sim.simulate_stuck(faults, patterns))
    reference_sim = ReferenceFaultSimulator(netlist)
    t_reference = _timed(
        lambda: reference_sim.simulate_stuck(faults, patterns)
    )

    identical = (
        t_compiled["value"].detected == t_reference["value"].detected
    )
    if not identical:
        raise AssertionError(
            f"{name}: compiled fault sim masks differ from reference"
        )
    speedup = t_reference["seconds"] / max(t_compiled["seconds"], 1e-9)
    return [
        {
            "kernel": "fsim_stuck_compiled",
            "circuit": name,
            "n": len(faults),
            "seconds": t_compiled["seconds"],
        },
        {
            "kernel": "fsim_stuck_reference",
            "circuit": name,
            "n": len(faults),
            "seconds": t_reference["seconds"],
            "compare_only": True,
        },
        {
            "kernel": "fsim_stuck_speedup",
            "circuit": name,
            "n": len(faults),
            "seconds": None,
            "speedup": speedup,
            "identical_masks": identical,
        },
    ]


def bench_fsim_transition(quick: bool) -> List[Dict[str, object]]:
    """Transition fault sim over random (V1, V2) pairs."""
    name = "s5378"
    netlist = load_circuit(name)
    stride = 40 if quick else 10
    n_pairs = 16 if quick else 48
    faults = all_transition_faults(netlist)[::stride]
    rng = random.Random(13)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    pairs = [
        (
            {net: rng.randint(0, 1) for net in nets},
            {net: rng.randint(0, 1) for net in nets},
        )
        for _ in range(n_pairs)
    ]
    sim = FaultSimulator(netlist)
    t = _timed(lambda: sim.simulate_transition(faults, pairs))
    return [{
        "kernel": "fsim_transition",
        "circuit": name,
        "n": len(faults),
        "seconds": t["seconds"],
    }]


def bench_sta(quick: bool) -> List[Dict[str, object]]:
    """STA arrival propagation over a mapped scan design."""
    name = "s382" if quick else "s5378"
    design = styled_designs(name)["scan"]
    n_runs = 20
    def run_sta():
        for _ in range(n_runs):
            analyze(design.netlist, design.library)
    t = _timed(run_sta)
    return [{
        "kernel": "sta_analyze",
        "circuit": name,
        "n": n_runs,
        "seconds": t["seconds"],
    }]


def bench_tables(quick: bool) -> List[Dict[str, object]]:
    """The table 1-3 quick experiment flows, end to end."""
    circuits = QUICK_CIRCUITS
    rows: List[Dict[str, object]] = []
    t = _timed(lambda: table1_area.run(circuits=circuits))
    rows.append({"kernel": "table1_quick", "circuit": "+".join(circuits),
                 "n": len(circuits), "seconds": t["seconds"]})
    t = _timed(lambda: table2_delay.run(circuits=circuits))
    rows.append({"kernel": "table2_quick", "circuit": "+".join(circuits),
                 "n": len(circuits), "seconds": t["seconds"]})
    t = _timed(lambda: table3_power.run(circuits=circuits, n_vectors=40))
    rows.append({"kernel": "table3_quick", "circuit": "+".join(circuits),
                 "n": len(circuits), "seconds": t["seconds"]})
    return rows


KERNEL_GROUPS = (
    bench_logicsim,
    bench_fsim_stuck,
    bench_fsim_transition,
    bench_sta,
    bench_tables,
)


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def run_bench(quick: bool = True) -> Dict[str, object]:
    """Run every kernel group; returns the report dict."""
    clear_caches()
    rows: List[Dict[str, object]] = []
    for group in KERNEL_GROUPS:
        rows.extend(group(quick))
    return {
        "schema": 1,
        "date": datetime.date.today().isoformat(),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "kernels": rows,
    }


def render_report(report: Dict[str, object]) -> str:
    """Aligned text table of one bench run."""
    rows = []
    for row in report["kernels"]:
        rows.append({
            "kernel": row["kernel"],
            "circuit": row["circuit"],
            "n": row["n"],
            "seconds": (
                "-" if row.get("seconds") is None
                else f"{row['seconds']:.4f}"
            ),
            "note": (
                f"speedup {row['speedup']:.2f}x, identical masks"
                if "speedup" in row else ""
            ),
        })
    title = (
        f"repro bench ({'quick' if report['quick'] else 'full'}) -- "
        f"{report['date']}, python {report['python']}"
    )
    return format_table(rows, title=title)


def check_against_baseline(report: Dict[str, object],
                           baseline_path: str,
                           threshold: float = 2.0,
                           min_speedup: float = 2.5) -> List[str]:
    """Regression check; returns a list of failure messages (empty = ok).

    A kernel fails if it is more than ``threshold`` times slower than
    the committed baseline; the compiled-vs-reference fault-sim speedup
    fails if it drops below ``min_speedup`` (machine-independent, since
    both sides run on the same host).
    """
    failures: List[str] = []
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        return [f"baseline file not found: {baseline_path}"]
    base_seconds = {
        row["kernel"]: row.get("seconds")
        for row in baseline.get("kernels", [])
    }
    for row in report["kernels"]:
        name = row["kernel"]
        if "speedup" in row:
            if row["speedup"] < min_speedup:
                failures.append(
                    f"{name}: compiled/reference speedup {row['speedup']:.2f}x"
                    f" < required {min_speedup:.1f}x"
                )
            continue
        if row.get("compare_only"):
            continue
        base = base_seconds.get(name)
        if base is None or row.get("seconds") is None:
            continue
        ratio = row["seconds"] / max(base, 1e-9)
        if ratio > threshold:
            failures.append(
                f"{name}: {row['seconds']:.4f}s is {ratio:.2f}x the "
                f"baseline {base:.4f}s (threshold {threshold:.1f}x)"
            )
    return failures


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro bench``."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the tier-1 simulation kernels and experiment "
                    "flows; optionally compare against the committed "
                    "baseline.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller fault samples / vector counts "
                             "(CI smoke configuration)")
    parser.add_argument("--output", default=None,
                        help="output JSON path (default BENCH_<date>.json)")
    parser.add_argument("--check-baseline", action="store_true",
                        help="compare against the committed baseline and "
                             "exit non-zero on a >threshold regression")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON path (default {DEFAULT_BASELINE})")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="failure threshold as a slowdown ratio "
                             "(default 2.0)")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="minimum compiled/reference fault-sim speedup "
                             "(default 2.5)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="also (re)write the baseline file from this run")
    args = parser.parse_args(list(argv) if argv is not None else None)

    report = run_bench(quick=args.quick)
    print(render_report(report))

    output = args.output or f"BENCH_{report['date']}.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\n[written to {output}]")

    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"[baseline refreshed at {args.baseline}]")

    if args.check_baseline:
        failures = check_against_baseline(
            report, args.baseline,
            threshold=args.threshold, min_speedup=args.min_speedup,
        )
        if failures:
            print("\nBASELINE CHECK FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"\nbaseline check ok (threshold {args.threshold:.1f}x, "
              f"min speedup {args.min_speedup:.1f}x)")
    return 0
