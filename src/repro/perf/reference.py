"""Reference (pre-compile) simulator implementations.

These are the dict-per-net simulators the repository shipped before the
flat-array compile pass, kept verbatim in behaviour for two jobs:

* **equivalence testing** -- the compiled kernels must produce
  bit-identical packed words and detection masks on every circuit
  (``tests/fault/test_fsim_equivalence.py``);
* **benchmarking** -- ``python -m repro bench`` times compiled vs.
  reference stuck-at fault simulation and records the speedup.

They are deliberately *not* exported from ``repro.fault`` /
``repro.power``; production code should use the compiled simulators.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import SimulationError
from ..netlist import Netlist, evaluate_gate, fanout_cone, topological_order
from ..power.logicsim import pack_patterns
from ..fault.fsim import FaultSimResult
from ..fault.models import StuckFault
from ..fault.podem import X, eval3


class ReferenceLogicSimulator:
    """Dict-per-net levelized simulator (the pre-compile implementation)."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.order: List[str] = topological_order(netlist)
        self._funcs: List[str] = []
        self._fanins: List[Tuple[str, ...]] = []
        for name in self.order:
            gate = netlist.gate(name)
            self._funcs.append(gate.func)
            self._fanins.append(gate.fanin)
        self.dff_names: List[str] = [g.name for g in netlist.dffs()]
        self.dff_data: List[str] = [g.fanin[0] for g in netlist.dffs()]

    def eval_combinational(self, values: Dict[str, int],
                           mask: int = 1) -> Dict[str, int]:
        """Evaluate the combinational core in place (dict-keyed)."""
        for net in self.netlist.inputs:
            if net not in values:
                raise SimulationError(f"missing value for input {net!r}")
        for net in self.dff_names:
            if net not in values:
                raise SimulationError(f"missing value for state input {net!r}")
        for name, func, fanin in zip(self.order, self._funcs, self._fanins):
            values[name] = evaluate_gate(
                func, tuple(values[f] for f in fanin), mask
            )
        return values


class ReferenceFaultSimulator:
    """Per-fault cone re-simulation over string-keyed dicts."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.sim = ReferenceLogicSimulator(netlist)
        self.observe: Tuple[str, ...] = tuple(netlist.core_outputs)
        self._cone_cache: Dict[str, Tuple[str, ...]] = {}

    def _cone_order(self, net: str) -> Tuple[str, ...]:
        cached = self._cone_cache.get(net)
        if cached is not None:
            return cached
        cone = fanout_cone(self.netlist, [net])
        order = tuple(name for name in self.sim.order if name in cone)
        self._cone_cache[net] = order
        return order

    def good_values(self, patterns: Sequence[Mapping[str, int]],
                    ) -> Tuple[Dict[str, int], int]:
        values, mask = pack_patterns(
            patterns,
            list(self.netlist.inputs) + list(self.netlist.state_inputs),
        )
        self.sim.eval_combinational(values, mask)
        return values, mask

    def detect_stuck(self, fault: StuckFault,
                     good: Mapping[str, int], mask: int) -> int:
        if fault.net not in self.netlist:
            raise SimulationError(f"fault site {fault.net!r} not in netlist")
        site_value = mask if fault.value else 0
        excited = good[fault.net] ^ site_value
        if not (excited & mask):
            return 0
        faulty: Dict[str, int] = {fault.net: site_value}
        for name in self._cone_order(fault.net):
            gate = self.netlist.gate(name)
            fanin_vals = tuple(
                faulty.get(f, good[f]) for f in gate.fanin
            )
            faulty[name] = evaluate_gate(gate.func, fanin_vals, mask)
        detected = 0
        for out in self.observe:
            detected |= good[out] ^ faulty.get(out, good[out])
        return detected & mask

    def simulate_stuck(self, faults: Sequence[StuckFault],
                       patterns: Sequence[Mapping[str, int]],
                       ) -> FaultSimResult:
        good, mask = self.good_values(patterns)
        detected = {
            fault: self.detect_stuck(fault, good, mask) for fault in faults
        }
        return FaultSimResult(detected=detected, n_patterns=len(patterns))


class ReferenceThreeValuedSimulator:
    """Whole-core dict re-simulation in three-valued (0/1/X) logic.

    This is the implication step PODEM shipped with before the
    event-driven compiled kernels: one scalar :func:`repro.fault.podem.eval3`
    call per gate over string-keyed dicts, re-walking the entire
    combinational core on every input assignment.  Kept as the
    bit-identity oracle for :meth:`repro.netlist.CompiledNetlist.eval3_into`
    and :meth:`~repro.netlist.CompiledNetlist.propagate3`
    (``tests/fault/test_atpg_flow.py``) and as the slow side of the
    ``eval3`` bench kernel.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.order: List[str] = topological_order(netlist)
        self._funcs: List[str] = []
        self._fanins: List[Tuple[str, ...]] = []
        for name in self.order:
            gate = netlist.gate(name)
            self._funcs.append(gate.func)
            self._fanins.append(gate.fanin)
        self.core_inputs: Tuple[str, ...] = tuple(netlist.inputs) + tuple(
            g.name for g in netlist.dffs()
        )

    def simulate(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Net -> 0/1/X for one (possibly partial) input assignment.

        Inputs absent from ``assignment`` are X; every combinational
        net is filled in by scalar three-valued evaluation.
        """
        values: Dict[str, int] = {net: X for net in self.core_inputs}
        for net, value in assignment.items():
            if net not in values:
                raise SimulationError(f"{net!r} is not a core input")
            values[net] = value
        for name, func, fanin in zip(self.order, self._funcs, self._fanins):
            values[name] = eval3(func, tuple(values[f] for f in fanin))
        return values
