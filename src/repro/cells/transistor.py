"""Transistor-level primitives for the cell library.

The paper's area metric is total transistor active area (W x L), so every
cell in :mod:`repro.cells.library` is defined as an explicit bag of
transistors.  Electrical derivations (input capacitance, drive resistance,
leakage) all start from these widths, using the technology constants in
:mod:`repro.units`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from .. import units
from ..errors import LibraryError


@dataclass(frozen=True)
class Transistor:
    """A single MOS device.

    Parameters
    ----------
    kind:
        ``"n"`` or ``"p"``.
    width:
        Channel width in metres.
    length:
        Channel length in metres (defaults to the 70 nm node minimum).
    role:
        Free-form tag used by reports: ``"logic"``, ``"gating"``,
        ``"keeper"``, ``"clock"`` ...
    vt:
        Threshold flavour: ``"svt"`` (standard) or ``"hvt"`` (high-Vt,
        an order of magnitude less leaky; used for keeper devices).
    """

    kind: str
    width: float
    length: float = units.LMIN_70NM
    role: str = "logic"
    vt: str = "svt"

    def __post_init__(self) -> None:
        if self.kind not in ("n", "p"):
            raise LibraryError(f"transistor kind must be 'n' or 'p', got {self.kind!r}")
        if self.width <= 0 or self.length <= 0:
            raise LibraryError("transistor dimensions must be positive")
        if self.vt not in ("svt", "hvt"):
            raise LibraryError(f"transistor vt must be 'svt' or 'hvt', got {self.vt!r}")

    @property
    def area(self) -> float:
        """Active area W*L in m^2."""
        return self.width * self.length

    @property
    def gate_cap(self) -> float:
        """Gate capacitance in farads."""
        return units.CGATE_PER_WIDTH * self.width

    @property
    def diff_cap(self) -> float:
        """Drain diffusion capacitance in farads."""
        return units.CDIFF_PER_WIDTH * self.width

    @property
    def on_resistance(self) -> float:
        """Effective switching resistance when ON, in ohms.

        PMOS mobility is folded into :data:`repro.units.PN_RATIO`: a PMOS
        needs ``PN_RATIO`` times the width for the same resistance.
        """
        r = units.RSW_PER_WIDTH / self.width
        if self.kind == "p":
            r *= units.PN_RATIO
        return r

    @property
    def off_leakage(self) -> float:
        """Subthreshold leakage current when OFF with full VDS, in amps."""
        leak = units.ILEAK_PER_WIDTH * self.width
        if self.vt == "hvt":
            leak *= units.HVT_LEAKAGE_RATIO
        return leak

    def scaled(self, factor: float) -> "Transistor":
        """Copy with width scaled by ``factor``."""
        return Transistor(
            self.kind, self.width * factor, self.length, self.role, self.vt
        )


def nmos(width_in_min: float = 1.0, role: str = "logic",
         vt: str = "svt") -> Transistor:
    """NMOS sized in multiples of the minimum width."""
    return Transistor("n", width_in_min * units.WMIN_70NM, role=role, vt=vt)


def pmos(width_in_min: float = 1.0, role: str = "logic",
         vt: str = "svt") -> Transistor:
    """PMOS sized in multiples of the minimum width (before PN ratio)."""
    return Transistor("p", width_in_min * units.WMIN_70NM, role=role, vt=vt)


def total_width(transistors: Iterable[Transistor],
                kind: str | None = None) -> float:
    """Sum of channel widths, optionally filtered by device kind."""
    return sum(
        t.width for t in transistors if kind is None or t.kind == kind
    )


def total_area(transistors: Iterable[Transistor]) -> float:
    """Sum of active areas (the paper's area metric)."""
    return sum(t.area for t in transistors)


def inverter_pair(drive: float = 1.0, role: str = "logic") -> Tuple[Transistor, Transistor]:
    """A (PMOS, NMOS) pair for an inverter of the given drive strength."""
    return (
        pmos(units.PN_RATIO * drive, role=role),
        nmos(drive, role=role),
    )
