"""Standard-cell model.

A :class:`Cell` bundles the transistor bag (for area), the lumped
electrical parameters used by STA and power analysis, and the logical
function used by the simulators.  Cells are built by
:mod:`repro.cells.library`; this module only defines the data model and
the derivations shared by all cells.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from .. import units
from ..errors import LibraryError
from .transistor import Transistor, total_area, total_width


@dataclass(frozen=True)
class Cell:
    """One library cell.

    Parameters
    ----------
    name:
        Library name, e.g. ``"NAND2_X1"``.
    func:
        Evaluable logical function (see
        :func:`repro.netlist.gate.evaluate_gate`), or ``None`` for cells
        with no simple combinational function (DFF, latches, keepers).
    n_inputs:
        Number of data input pins.
    transistors:
        Every device in the cell; the area metric sums their W*L.
    pull_down_width / pull_up_width:
        Effective widths of the worst-case conducting path to GND / VDD
        (series stacks already divided out).  Used for drive resistance.
    output_diff_width:
        Total drain width hanging on the output node (diffusion cap).
    internal_cap:
        Equivalent internal capacitance switched per output transition.
    intrinsic_delay:
        Fixed parasitic delay added to the RC term.
    clock_cap:
        Capacitance presented to the clock net (sequential cells only).
    seq:
        True for flip-flops and latches.
    """

    name: str
    func: Optional[str]
    n_inputs: int
    transistors: Tuple[Transistor, ...]
    pull_down_width: float
    pull_up_width: float
    output_diff_width: float
    internal_cap: float = 0.0
    intrinsic_delay: float = 2.0 * units.PS
    clock_cap: float = 0.0
    seq: bool = False

    def __post_init__(self) -> None:
        if self.n_inputs < 0:
            raise LibraryError(f"{self.name}: negative pin count")
        if self.pull_down_width < 0 or self.pull_up_width < 0:
            raise LibraryError(f"{self.name}: negative drive width")

    # -- area ---------------------------------------------------------
    @property
    def area(self) -> float:
        """Total transistor active area (the paper's area metric), m^2."""
        return total_area(self.transistors)

    @property
    def total_width(self) -> float:
        """Sum of all channel widths, m."""
        return total_width(self.transistors)

    # -- timing ---------------------------------------------------------
    @property
    def input_cap(self) -> float:
        """Capacitance of one input pin, farads.

        Approximated as the total gate capacitance divided evenly over
        the input pins (clock pin excluded via ``clock_cap``).
        """
        if self.n_inputs == 0:
            return 0.0
        gate_cap = sum(
            t.gate_cap for t in self.transistors if t.role in ("logic",)
        )
        return gate_cap / self.n_inputs

    @property
    def drive_resistance(self) -> float:
        """Effective output resistance, ohms (average of pull-up and
        pull-down paths)."""
        resistances = []
        if self.pull_down_width > 0:
            resistances.append(units.RSW_PER_WIDTH / self.pull_down_width)
        if self.pull_up_width > 0:
            resistances.append(
                units.RSW_PER_WIDTH * units.PN_RATIO / self.pull_up_width
            )
        if not resistances:
            raise LibraryError(f"{self.name}: cell cannot drive anything")
        return sum(resistances) / len(resistances)

    @property
    def output_cap(self) -> float:
        """Parasitic output (diffusion) capacitance, farads."""
        return units.CDIFF_PER_WIDTH * self.output_diff_width

    def delay(self, load_cap: float) -> float:
        """Propagation delay driving ``load_cap`` farads, seconds."""
        return (
            self.intrinsic_delay
            + self.drive_resistance * (self.output_cap + load_cap)
        )

    # -- power ----------------------------------------------------------
    @property
    def leakage_power(self) -> float:
        """Static leakage power at VDD, watts.

        Half the devices are OFF on average; series stacks are credited
        with the standard stacking factor.
        """
        leak = 0.0
        for t in self.transistors:
            leak += 0.5 * t.off_leakage
        return leak * units.VDD_70NM

    def switch_energy(self, load_cap: float) -> float:
        """Energy of one output transition driving ``load_cap``, joules."""
        c_total = self.output_cap + self.internal_cap + load_cap
        return 0.5 * c_total * units.VDD_70NM ** 2

    def clock_energy(self) -> float:
        """Energy drawn from the clock net per cycle (two clock edges)."""
        return self.clock_cap * units.VDD_70NM ** 2

    # -- derivation -------------------------------------------------------
    def scaled(self, factor: float, name: Optional[str] = None) -> "Cell":
        """Cell with all widths (hence drive and caps) scaled by ``factor``."""
        return replace(
            self,
            name=name or f"{self.name}@{factor:g}",
            transistors=tuple(t.scaled(factor) for t in self.transistors),
            pull_down_width=self.pull_down_width * factor,
            pull_up_width=self.pull_up_width * factor,
            output_diff_width=self.output_diff_width * factor,
            internal_cap=self.internal_cap * factor,
            clock_cap=self.clock_cap * factor,
        )
