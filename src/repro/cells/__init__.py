"""Standard-cell library with transistor-level area accounting.

Public surface::

    from repro.cells import Cell, Transistor, Library, default_library
    from repro.cells import make_hold_latch, make_flh_keeper, make_gating_pair
"""

from .cell import Cell
from .library import (
    Library,
    default_library,
    leda_70nm,
    make_aoi21,
    make_aoi22,
    make_and,
    make_buffer,
    make_dff,
    make_flh_keeper,
    make_gating_pair,
    make_hold_latch,
    make_inverter,
    make_mux2,
    make_nand,
    make_nor,
    make_oai21,
    make_oai22,
    make_or,
    make_xor,
)
from .scaling import scale_cell, scale_library, to_250nm
from .transistor import (
    Transistor,
    inverter_pair,
    nmos,
    pmos,
    total_area,
    total_width,
)

__all__ = [
    "Cell",
    "Library",
    "Transistor",
    "default_library",
    "inverter_pair",
    "leda_70nm",
    "make_aoi21",
    "make_aoi22",
    "make_and",
    "make_buffer",
    "make_dff",
    "make_flh_keeper",
    "make_gating_pair",
    "make_hold_latch",
    "make_inverter",
    "make_mux2",
    "make_nand",
    "make_nor",
    "make_oai21",
    "make_oai22",
    "make_or",
    "make_xor",
    "nmos",
    "pmos",
    "scale_cell",
    "scale_library",
    "to_250nm",
    "total_area",
    "total_width",
]
