"""Technology scaling between the 0.25 um LEDA node and 70 nm BPTM.

The paper's flow maps at 0.25 um and then scales the netlists to 70 nm.
Scaling is a constant linear shrink of every W and L, so the 70 nm
library in :mod:`repro.cells.library` is the canonical one and this
module recovers (or produces) other nodes from it.  Relative areas,
delays and overhead percentages are invariant under the shrink -- which
is exactly why the paper's comparisons survive it.
"""

from __future__ import annotations

from dataclasses import replace

from .. import units
from .cell import Cell
from .library import Library
from .transistor import Transistor


def scale_transistor(t: Transistor, shrink: float) -> Transistor:
    """Shrink both W and L by ``shrink`` (< 1 scales down)."""
    return Transistor(t.kind, t.width * shrink, t.length * shrink, t.role, t.vt)


def scale_cell(cell: Cell, shrink: float, suffix: str = "") -> Cell:
    """Shrink every geometric quantity of ``cell`` by ``shrink``.

    Capacitances scale with width (per-width constants are held fixed, a
    first-order approximation that preserves relative comparisons).
    """
    return replace(
        cell,
        name=cell.name + suffix,
        transistors=tuple(scale_transistor(t, shrink) for t in cell.transistors),
        pull_down_width=cell.pull_down_width * shrink,
        pull_up_width=cell.pull_up_width * shrink,
        output_diff_width=cell.output_diff_width * shrink,
        internal_cap=cell.internal_cap * shrink,
        clock_cap=cell.clock_cap * shrink,
        intrinsic_delay=cell.intrinsic_delay * shrink,
    )


def scale_library(library: Library, shrink: float, name: str) -> Library:
    """Produce a library for another node by linear shrink."""
    return Library(name, (scale_cell(cell, shrink) for cell in library))


def to_250nm(library: Library) -> Library:
    """View of a 70 nm library blown back up to the 0.25 um source node."""
    return scale_library(library, 1.0 / units.SCALE_250_TO_70, "leda250")
