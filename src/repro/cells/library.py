"""The LEDA-like standard-cell library, retargeted to 70 nm.

The paper maps the ISCAS89 netlists onto the LEDA 0.25 um library with
Synopsys Design Compiler (medium effort; the library's complex AOI/OAI and
MUX cells reduce the gate count), then scales the netlists to 70 nm BPTM.
We define the equivalent library directly at 70 nm -- the retargeting is a
linear shrink (:mod:`repro.cells.scaling` recovers the 0.25 um view).

Transistor sizing follows the usual textbook rules: a unit ("X1") inverter
is a minimum NMOS plus a PN_RATIO-wide PMOS; series stacks are widened by
the stack depth so every cell matches the unit inverter's drive.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .. import units
from ..errors import LibraryError
from .cell import Cell
from .transistor import Transistor, nmos, pmos

W = units.WMIN_70NM
P = units.PN_RATIO


def make_inverter(drive: float = 1.0, name: Optional[str] = None) -> Cell:
    """INV_X<drive>: unit-drive ratioed inverter."""
    return Cell(
        name=name or f"INV_X{drive:g}",
        func="NOT",
        n_inputs=1,
        transistors=(pmos(P * drive), nmos(drive)),
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(1 + P) * drive * W,
    )


def make_buffer(drive: float = 1.0, name: Optional[str] = None) -> Cell:
    """BUF_X<drive>: two cascaded inverters (first at 1/3 drive)."""
    first = max(drive / 3.0, 0.5)
    return Cell(
        name=name or f"BUF_X{drive:g}",
        func="BUF",
        n_inputs=1,
        transistors=(
            pmos(P * first), nmos(first),
            pmos(P * drive), nmos(drive),
        ),
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(1 + P) * drive * W,
        internal_cap=(1 + P) * first * W * units.CDIFF_PER_WIDTH,
        intrinsic_delay=4.0 * units.PS,
    )


def make_nand(n: int, drive: float = 1.0, name: Optional[str] = None) -> Cell:
    """NAND<n>_X<drive>: n series NMOS (widened n-fold), n parallel PMOS."""
    if n < 2:
        raise LibraryError("NAND needs at least 2 inputs")
    devices: List[Transistor] = []
    for _ in range(n):
        devices.append(nmos(n * drive))
        devices.append(pmos(P * drive))
    return Cell(
        name=name or f"NAND{n}_X{drive:g}",
        func="NAND",
        n_inputs=n,
        transistors=tuple(devices),
        pull_down_width=drive * W,              # stack already divided out
        pull_up_width=P * drive * W,            # single PMOS worst case
        output_diff_width=(n * P + n) * drive * W,
        intrinsic_delay=(1.5 + 0.5 * n) * units.PS,
    )


def make_nor(n: int, drive: float = 1.0, name: Optional[str] = None) -> Cell:
    """NOR<n>_X<drive>: n parallel NMOS, n series PMOS (widened n-fold)."""
    if n < 2:
        raise LibraryError("NOR needs at least 2 inputs")
    devices: List[Transistor] = []
    for _ in range(n):
        devices.append(nmos(drive))
        devices.append(pmos(n * P * drive))
    return Cell(
        name=name or f"NOR{n}_X{drive:g}",
        func="NOR",
        n_inputs=n,
        transistors=tuple(devices),
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(n + n * P) * drive * W,
        intrinsic_delay=(1.5 + 0.7 * n) * units.PS,
    )


def make_and(n: int, drive: float = 1.0) -> Cell:
    """AND<n>_X<drive>: NAND followed by inverter."""
    nand = make_nand(n, drive)
    inv = make_inverter(drive)
    return Cell(
        name=f"AND{n}_X{drive:g}",
        func="AND",
        n_inputs=n,
        transistors=nand.transistors + inv.transistors,
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(1 + P) * drive * W,
        internal_cap=nand.output_cap + inv.input_cap,
        intrinsic_delay=nand.intrinsic_delay + 3.0 * units.PS,
    )


def make_or(n: int, drive: float = 1.0) -> Cell:
    """OR<n>_X<drive>: NOR followed by inverter."""
    nor = make_nor(n, drive)
    inv = make_inverter(drive)
    return Cell(
        name=f"OR{n}_X{drive:g}",
        func="OR",
        n_inputs=n,
        transistors=nor.transistors + inv.transistors,
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(1 + P) * drive * W,
        internal_cap=nor.output_cap + inv.input_cap,
        intrinsic_delay=nor.intrinsic_delay + 3.0 * units.PS,
    )


def make_xor(n: int, drive: float = 1.0, invert: bool = False) -> Cell:
    """XOR2/XNOR2 (n-ary built as a tree for n > 2)."""
    stages = max(1, n - 1)
    devices: List[Transistor] = []
    for _ in range(stages):
        # 10-transistor static XOR: two input inverters + 6-T core.
        devices.extend([pmos(P), nmos(1.0), pmos(P), nmos(1.0)])
        devices.extend(
            [pmos(2 * P * drive)] * 2 + [nmos(2 * drive)] * 2
            + [pmos(2 * P * drive), nmos(2 * drive)]
        )
    func = "XNOR" if invert else "XOR"
    return Cell(
        name=f"{func}{n}_X{drive:g}",
        func=func,
        n_inputs=n,
        transistors=tuple(devices),
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=2 * (1 + P) * drive * W,
        internal_cap=stages * 2.0 * units.FF,
        intrinsic_delay=(4.0 + 3.0 * (stages - 1)) * units.PS,
    )


def make_aoi21(drive: float = 1.0) -> Cell:
    """AOI21_X<drive>: out = NOT(a1.a2 + b)."""
    devices = (
        nmos(2 * drive), nmos(2 * drive), nmos(drive),
        pmos(2 * P * drive), pmos(2 * P * drive), pmos(2 * P * drive),
    )
    return Cell(
        name=f"AOI21_X{drive:g}",
        func="AOI21",
        n_inputs=3,
        transistors=devices,
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(1 + 2 * P) * 2 * drive * W,
        intrinsic_delay=3.5 * units.PS,
    )


def make_aoi22(drive: float = 1.0) -> Cell:
    """AOI22_X<drive>: out = NOT(a1.a2 + b1.b2)."""
    devices = tuple(
        [nmos(2 * drive)] * 4 + [pmos(2 * P * drive)] * 4
    )
    return Cell(
        name=f"AOI22_X{drive:g}",
        func="AOI22",
        n_inputs=4,
        transistors=devices,
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(2 + 2 * P) * 2 * drive * W,
        intrinsic_delay=4.0 * units.PS,
    )


def make_oai21(drive: float = 1.0) -> Cell:
    """OAI21_X<drive>: out = NOT((a1+a2).b)."""
    devices = (
        nmos(2 * drive), nmos(2 * drive), nmos(2 * drive),
        pmos(2 * P * drive), pmos(2 * P * drive), pmos(P * drive),
    )
    return Cell(
        name=f"OAI21_X{drive:g}",
        func="OAI21",
        n_inputs=3,
        transistors=devices,
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(2 + 2 * P) * 2 * drive * W,
        intrinsic_delay=3.5 * units.PS,
    )


def make_oai22(drive: float = 1.0) -> Cell:
    """OAI22_X<drive>: out = NOT((a1+a2).(b1+b2))."""
    devices = tuple(
        [nmos(2 * drive)] * 4 + [pmos(2 * P * drive)] * 4
    )
    return Cell(
        name=f"OAI22_X{drive:g}",
        func="OAI22",
        n_inputs=4,
        transistors=devices,
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(2 + 2 * P) * 2 * drive * W,
        intrinsic_delay=4.0 * units.PS,
    )


def make_mux2(drive: float = 1.0) -> Cell:
    """MUX2_X<drive>: transmission-gate mux (Fig. 6(b) of the paper).

    Two TGs, a select inverter and an output inverter.  The TG in the
    data path makes this the slowest holding element -- exactly why the
    MUX-based holding scheme loses on delay in Table II.
    """
    devices = (
        # two transmission gates
        nmos(drive), pmos(P * drive), nmos(drive), pmos(P * drive),
        # select inverter (minimum size)
        pmos(P), nmos(1.0),
        # weak level-restoring feedback inverter on the TG output node
        pmos(P), nmos(1.0),
        # output inverter
        pmos(P * drive), nmos(drive),
    )
    return Cell(
        name=f"MUX2_X{drive:g}",
        func="MUX2",
        n_inputs=3,
        transistors=devices,
        pull_down_width=0.45 * drive * W,   # TG in series with driver
        pull_up_width=0.45 * P * drive * W,
        output_diff_width=(1 + P) * drive * W,
        internal_cap=2.0 * (1 + P) * drive * W * units.CDIFF_PER_WIDTH,
        intrinsic_delay=8.0 * units.PS,
    )


def make_dff(drive: float = 1.0, scan: bool = False) -> Cell:
    """Master-slave transmission-gate flip-flop (optionally with scan mux).

    20 transistors for the plain DFF (two TG latches plus local clock
    inverters), 26 for the scan version (TG input mux + its inverter).
    """
    devices: List[Transistor] = []
    # master + slave: input TG, two inverters, feedback TG -- each.
    for _ in range(2):
        devices.extend([nmos(1.0, role="clock"), pmos(P, role="clock")])  # in TG
        devices.extend([pmos(P), nmos(1.0), pmos(P), nmos(1.0)])           # latch invs
        devices.extend([nmos(1.0, role="clock"), pmos(P, role="clock")])  # fb TG
    # output buffer at the requested drive
    devices.extend([pmos(P * drive), nmos(drive)])
    # local clock inverter
    devices.extend([pmos(P, role="clock"), nmos(1.0, role="clock")])
    name = "SDFF" if scan else "DFF"
    if scan:
        # scan-input mux: two TGs + select inverter
        devices.extend([
            nmos(1.0), pmos(P), nmos(1.0), pmos(P),
            pmos(P), nmos(1.0),
        ])
    return Cell(
        name=f"{name}_X{drive:g}",
        func="DFF",
        n_inputs=2 if scan else 1,
        transistors=tuple(devices),
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(1 + P) * drive * W,
        internal_cap=6.0 * units.FF,
        intrinsic_delay=12.0 * units.PS,
        clock_cap=8.0 * W * units.CGATE_PER_WIDTH,
        seq=True,
    )


def make_hold_latch(drive: float = 1.0) -> Cell:
    """Enhanced-scan hold latch (Fig. 6(a) of the paper).

    Input TG (sized to pass the flip-flop's full drive), cross-coupled
    inverter pair, feedback TG, a local HOLD-signal inverter and an
    output inverter sized to drive the combinational logic.  In normal
    mode the latch is transparent, so it behaves as a buffer in the
    stimulus path (its D->Q delay is what Table II charges to enhanced
    scan).
    """
    devices = (
        # input transmission gate, full drive
        nmos(2.0), pmos(2 * P),
        # storage inverter pair: sized up for robustness -- it must hold
        # the initialization pattern against a full clock period of scan
        # activity coupling into the stimulus path
        pmos(2 * P), nmos(2.0), pmos(1.5 * P), nmos(1.5),
        # feedback transmission gate
        nmos(1.0, role="clock"), pmos(P, role="clock"),
        # local HOLD-signal inverter
        pmos(P, role="clock"), nmos(1.0, role="clock"),
        # output inverter, full drive
        pmos(P * drive), nmos(drive),
    )
    return Cell(
        name=f"HOLD_LATCH_X{drive:g}",
        func="BUF",
        n_inputs=1,
        transistors=devices,
        pull_down_width=drive * W,
        pull_up_width=P * drive * W,
        output_diff_width=(1 + P) * drive * W,
        internal_cap=(2.5 * (1 + P)) * W * units.CDIFF_PER_WIDTH
        + 2.5 * W * units.CGATE_PER_WIDTH,
        intrinsic_delay=7.0 * units.PS,
        clock_cap=4.0 * W * units.CGATE_PER_WIDTH,
        seq=True,
    )


def make_flh_keeper() -> Cell:
    """FLH keeper: two minimum inverters behind a minimum TG (Fig. 3).

    Enabled only in sleep mode; in normal mode it merely loads the first-
    level gate output with the TG diffusion plus one inverter gate.
    Devices are true-minimum (half the library's unit width) and high-Vt:
    the keeper only needs to out-fight leakage and coupling noise, and a
    leaky keeper would forfeit the stacking savings of Table III.
    """
    half = 0.5
    devices = (
        pmos(half * P, role="keeper", vt="hvt"),
        nmos(half, role="keeper", vt="hvt"),
        pmos(half * P, role="keeper", vt="hvt"),
        nmos(half, role="keeper", vt="hvt"),
        nmos(half, role="keeper", vt="hvt"),   # TG
        pmos(half * P, role="keeper", vt="hvt"),
    )
    return Cell(
        name="FLH_KEEPER",
        func=None,
        n_inputs=1,
        transistors=devices,
        pull_down_width=0.25 * W,
        pull_up_width=0.25 * P * W,
        output_diff_width=0.5 * (1 + P) * W,
        seq=True,
    )


def make_gating_pair(width_factor: float = 2.0) -> Tuple[Transistor, Transistor]:
    """Supply-gating (header PMOS, footer NMOS) pair for one first-level
    gate, sized ``width_factor`` times minimum."""
    return (
        pmos(P * width_factor, role="gating"),
        nmos(width_factor, role="gating"),
    )


class Library:
    """A named collection of cells with func/arity lookup."""

    def __init__(self, name: str, cells: Iterable[Cell]):
        self.name = name
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: Cell) -> None:
        """Register a cell (names must be unique)."""
        if cell.name in self._cells:
            raise LibraryError(f"duplicate cell {cell.name!r}")
        self._cells[cell.name] = cell

    def cell(self, name: str) -> Cell:
        """Look up a cell by exact name."""
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r} has no cell {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def for_func(self, func: str, arity: int, drive: float = 1.0) -> Cell:
        """Smallest cell implementing ``func`` at the given arity/drive."""
        if func in ("NOT",):
            return self.cell(f"INV_X{drive:g}")
        if func == "BUF":
            return self.cell(f"BUF_X{drive:g}")
        if func in ("NAND", "NOR", "AND", "OR"):
            if arity == 1:
                # Degenerate single-input gate after optimization.
                return self.cell(
                    f"INV_X{drive:g}" if func in ("NAND", "NOR")
                    else f"BUF_X{drive:g}"
                )
            return self.cell(f"{func}{min(arity, 4)}_X{drive:g}")
        if func in ("XOR", "XNOR"):
            return self.cell(f"{func}{min(arity, 3)}_X{drive:g}")
        if func in ("AOI21", "AOI22", "OAI21", "OAI22"):
            return self.cell(f"{func}_X{drive:g}")
        if func == "MUX2":
            return self.cell(f"MUX2_X{drive:g}")
        if func == "DFF":
            return self.cell(f"DFF_X{drive:g}")
        raise LibraryError(f"no cell for function {func!r} arity {arity}")


def leda_70nm() -> Library:
    """Build the LEDA-like library at the 70 nm node.

    Drive strengths X1 and X2 are provided for the simple gates (the
    mapper picks X2 for heavily loaded nets), X1 for complex gates, plus
    the sequential and DFT cells the paper's three schemes need.
    """
    cells: List[Cell] = []
    for drive in (1.0, 2.0, 4.0):
        cells.append(make_inverter(drive))
        cells.append(make_buffer(drive))
    for drive in (1.0, 2.0):
        for n in (2, 3, 4):
            cells.append(make_nand(n, drive))
            cells.append(make_nor(n, drive))
            cells.append(make_and(n, drive))
            cells.append(make_or(n, drive))
        for n in (2, 3):
            cells.append(make_xor(n, drive))
            cells.append(make_xor(n, drive, invert=True))
        cells.append(make_aoi21(drive))
        cells.append(make_aoi22(drive))
        cells.append(make_oai21(drive))
        cells.append(make_oai22(drive))
        cells.append(make_mux2(drive))
        cells.append(make_dff(drive))
        cells.append(make_dff(drive, scan=True))
        cells.append(make_hold_latch(drive))
    cells.append(make_flh_keeper())
    return Library("leda70", cells)


_DEFAULT_LIBRARY: Optional[Library] = None


def default_library() -> Library:
    """Shared singleton of :func:`leda_70nm` (cells are immutable)."""
    global _DEFAULT_LIBRARY
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = leda_70nm()
    return _DEFAULT_LIBRARY
