"""Physical units and technology constants.

Everything in the library is expressed in plain SI floats; this module only
centralizes the handful of constants and convenience multipliers so that the
electrical models in :mod:`repro.cells`, :mod:`repro.timing`,
:mod:`repro.power` and :mod:`repro.spice` agree with each other.

The paper maps the ISCAS89 benchmarks to a 0.25 um standard-cell library
(LEDA) and then scales the netlists to the 70 nm Berkeley Predictive
Technology Model node.  We model that node with the round numbers below;
only *relative* overheads matter for the reproduced tables.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# SI prefixes (multiply to convert into base units).
# ---------------------------------------------------------------------------
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

# Convenience aliases used throughout the electrical models.
UM = MICRO          # micrometre -> metres
NM = NANO           # nanometre -> metres
NS = NANO           # nanosecond -> seconds
PS = PICO           # picosecond -> seconds
FF = FEMTO          # femtofarad -> farads
UW = MICRO          # microwatt -> watts

# ---------------------------------------------------------------------------
# 70 nm predictive-technology node (the paper's simulation target).
# ---------------------------------------------------------------------------
#: Nominal supply voltage at the 70 nm BPTM node.
VDD_70NM = 1.0
#: Nominal NMOS/PMOS threshold voltage magnitude.
VTH_70NM = 0.20
#: Drawn channel length.
LMIN_70NM = 70 * NM
#: Minimum transistor width used for keeper devices and small cells.
WMIN_70NM = 140 * NM
#: PMOS/NMOS width ratio for equal rise/fall drive.
PN_RATIO = 2.0
#: Gate capacitance per unit width (F per metre of width) -- about
#: 1 fF/um, the usual rule of thumb for sub-100 nm nodes.
CGATE_PER_WIDTH = 1.0 * FF / UM
#: Drain-diffusion capacitance per unit width.
CDIFF_PER_WIDTH = 0.5 * FF / UM
#: Effective switching resistance of an NMOS of 1 m width (R = RW / W).
RSW_PER_WIDTH = 2.0e3 * UM            # 2 kOhm for a 1 um NMOS
#: Subthreshold leakage current per unit width of an OFF device at VDD.
#: 70 nm BPTM devices are very leaky (the premise of the paper's leakage
#: stacking argument); 200 nA/um is in the range Roy et al. report for
#: sub-100 nm nodes at operating temperature.
ILEAK_PER_WIDTH = 200e-9 / UM
#: Leakage ratio of a high-Vt device versus standard-Vt (used for the FLH
#: keeper, which only needs to out-fight leakage and noise in sleep mode).
HVT_LEAKAGE_RATIO = 0.1
#: Active-leakage reduction factor credited to a gate behind an ON supply
#: gating device (self reverse bias of the stack; Roy et al. 2003).
#: 0.6 keeps FLH power within a fraction of a percent of the original
#: circuit, dipping below it for the larger benchmarks -- the paper's
#: Table III behaviour.
STACKING_FACTOR = 0.6

#: Normal-mode clock frequency assumed for power numbers.
FCLK_NORMAL = 500e6
#: Scan-shift frequency from the paper's floating-node argument (1 GHz).
FCLK_SCAN = 1e9

# ---------------------------------------------------------------------------
# 0.25 um LEDA source library (before scaling).
# ---------------------------------------------------------------------------
LMIN_250NM = 0.25 * UM
WMIN_250NM = 0.5 * UM

#: Linear shrink factor applied when retargeting the 0.25 um library to 70 nm.
SCALE_250_TO_70 = LMIN_70NM / LMIN_250NM


def active_area(width: float, length: float = LMIN_70NM) -> float:
    """Transistor active area W*L in m^2 (the paper's area metric)."""
    return width * length


def um2(area_m2: float) -> float:
    """Convert an area in m^2 to um^2 for human-readable reports."""
    return area_m2 / (UM * UM)
