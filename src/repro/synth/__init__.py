"""Technology mapping and local resynthesis.

Public surface::

    from repro.synth import map_netlist, clip_arity, match_complex_gates
    from repro.synth import insert_buffer_pair, collapse_double_inverters
"""

from .decompose import clip_arity
from .mapper import (
    bind_cells,
    cell_histogram,
    check_mapped,
    map_netlist,
    match_complex_gates,
)
from .resynth import (
    collapse_double_inverters,
    existing_inverter,
    insert_buffer_pair,
    prune_dangling,
)

__all__ = [
    "bind_cells",
    "cell_histogram",
    "check_mapped",
    "clip_arity",
    "collapse_double_inverters",
    "existing_inverter",
    "insert_buffer_pair",
    "map_netlist",
    "match_complex_gates",
    "prune_dangling",
]
