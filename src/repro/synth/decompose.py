"""Arity decomposition: split wide gates into library-implementable trees.

The LEDA-like library tops out at 4-input simple gates (3-input XOR), so
any wider gate coming out of a parser or a transform is rewritten as a
balanced tree before mapping.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import MappingError
from ..netlist import Netlist

#: Inner-node function used when splitting each wide function.  The root
#: keeps the original function over the partial results.
_INNER = {
    "AND": "AND",
    "NAND": "AND",
    "OR": "OR",
    "NOR": "OR",
    "XOR": "XOR",
    "XNOR": "XOR",
}


def _split_groups(fanin: Sequence[str], max_arity: int) -> List[List[str]]:
    """Partition fanin nets into groups of at most ``max_arity``."""
    return [
        list(fanin[i: i + max_arity])
        for i in range(0, len(fanin), max_arity)
    ]


def clip_arity(netlist: Netlist, max_arity: int = 4) -> int:
    """Rewrite gates wider than ``max_arity`` as trees, in place.

    Returns the number of gates that were decomposed.  The transform is
    logically exact: ``NAND(a..z)`` becomes ``NAND(AND(a..d), ...)`` and
    so on, iterating until the root also fits.
    """
    if max_arity < 2:
        raise MappingError("max_arity must be at least 2")
    rewritten = 0
    changed = True
    while changed:
        changed = False
        for gate in list(netlist.gates()):
            if not gate.is_combinational or gate.n_inputs <= max_arity:
                continue
            inner = _INNER.get(gate.func)
            if inner is None:
                raise MappingError(
                    f"cannot decompose {gate.func} gate {gate.name!r}"
                )
            groups = _split_groups(gate.fanin, max_arity)
            new_fanin: List[str] = []
            for group in groups:
                if len(group) == 1:
                    new_fanin.append(group[0])
                    continue
                sub = netlist.fresh_net(f"{gate.name}_d")
                netlist.add(sub, inner, group)
                new_fanin.append(sub)
            netlist.replace_gate(gate.with_fanin(new_fanin))
            rewritten += 1
            changed = True
    return rewritten
