"""Technology mapping onto the LEDA-like cell library.

Reproduces the paper's "Design Compiler, medium mapping effort" step in
spirit: simple gates bind directly to library cells, and the classic
AOI/OAI patterns are matched so that the mapped netlist contains complex
gates ("the library contains complex gate types e.g. aoi and mux, and
hence, the total number of logic gates is reduced").

Mapping works on a copy of the input netlist:

1. :func:`repro.synth.decompose.clip_arity` guarantees arity <= 4;
2. AOI21/AOI22/OAI21/OAI22 pattern matching absorbs single-fanout
   AND-into-NOR / OR-into-NAND pairs;
3. every combinational gate is bound to the smallest cell implementing
   its function, with X2 drive for nets with heavy fanout;
4. every DFF is bound to the plain DFF cell (scan insertion later
   upgrades it to SDFF).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cells import Library, default_library
from ..errors import MappingError
from ..netlist import Gate, Netlist, validate
from .decompose import clip_arity

#: Fanout count at and above which the mapper picks the X2 drive.
_HIGH_FANOUT = 4


def _absorbable(netlist: Netlist, net: str, func: str) -> Optional[Gate]:
    """Return the driver of ``net`` if it is a single-fanout ``func`` gate
    that is neither a primary output nor a state output."""
    driver = netlist.gate(net)
    if driver.func != func or driver.n_inputs != 2:
        return None
    if netlist.fanout_count(net) != 1:
        return None
    if net in netlist.outputs or net in set(netlist.state_outputs):
        return None
    return driver


def match_complex_gates(netlist: Netlist) -> int:
    """Fuse AND->NOR and OR->NAND pairs into AOI/OAI gates, in place.

    Returns the number of complex gates created.  Patterns::

        NOR2(AND2(a,b), c)          -> AOI21(a, b, c)
        NOR2(AND2(a,b), AND2(c,d))  -> AOI22(a, b, c, d)
        NAND2(OR2(a,b), c)          -> OAI21(a, b, c)
        NAND2(OR2(a,b), OR2(c,d))   -> OAI22(a, b, c, d)
    """
    created = 0
    for gate in list(netlist.gates()):
        if gate.func not in ("NOR", "NAND") or gate.n_inputs != 2:
            continue
        if gate.fanin[0] == gate.fanin[1]:
            # NOR2(x, x) is a degenerate inverter, not an AOI/OAI pattern;
            # absorbing the shared driver would leave the fused gate still
            # referencing it (fanout sinks are a set, so it looks
            # single-fanout).
            continue
        inner_func = "AND" if gate.func == "NOR" else "OR"
        left = _absorbable(netlist, gate.fanin[0], inner_func)
        right = _absorbable(netlist, gate.fanin[1], inner_func)
        prefix = "AOI" if gate.func == "NOR" else "OAI"
        if left is not None and right is not None and left is not right:
            fused = Gate(
                gate.name, f"{prefix}22", left.fanin + right.fanin
            )
            netlist.replace_gate(fused)
            netlist.remove_gate(left.name)
            netlist.remove_gate(right.name)
            created += 1
        elif left is not None:
            fused = Gate(
                gate.name, f"{prefix}21", left.fanin + (gate.fanin[1],)
            )
            netlist.replace_gate(fused)
            netlist.remove_gate(left.name)
            created += 1
        elif right is not None:
            fused = Gate(
                gate.name, f"{prefix}21", right.fanin + (gate.fanin[0],)
            )
            netlist.replace_gate(fused)
            netlist.remove_gate(right.name)
            created += 1
    return created


def bind_cells(netlist: Netlist, library: Library) -> None:
    """Assign a library cell to every gate and flip-flop, in place."""
    for gate in list(netlist.gates()):
        if gate.is_input:
            continue
        if gate.is_dff:
            cell = library.for_func("DFF", 1, drive=1.0)
        else:
            drive = 2.0 if netlist.fanout_count(gate.name) >= _HIGH_FANOUT else 1.0
            cell = library.for_func(gate.func, gate.n_inputs, drive=drive)
        netlist.replace_gate(gate.with_cell(cell.name))


def map_netlist(netlist: Netlist, library: Optional[Library] = None,
                complex_gates: bool = True) -> Netlist:
    """Technology-map ``netlist``; returns a new, cell-bound netlist.

    Parameters
    ----------
    library:
        Target library (defaults to the shared LEDA-like 70 nm library).
    complex_gates:
        Run AOI/OAI pattern matching ("medium effort"); disable for a
        naive one-to-one binding.
    """
    if library is None:
        library = default_library()
    mapped = netlist.copy(netlist.name)
    clip_arity(mapped, max_arity=4)
    if complex_gates:
        match_complex_gates(mapped)
    bind_cells(mapped, library)
    validate(mapped)
    return mapped


def check_mapped(netlist: Netlist, library: Library) -> None:
    """Raise :class:`MappingError` unless every gate carries a valid cell."""
    missing = [
        gate.name
        for gate in netlist.gates()
        if not gate.is_input and (gate.cell is None or gate.cell not in library)
    ]
    if missing:
        raise MappingError(
            f"{netlist.name}: {len(missing)} gates unmapped "
            f"(e.g. {missing[:5]})"
        )


def cell_histogram(netlist: Netlist) -> Dict[str, int]:
    """Count of instances per bound cell name."""
    histogram: Dict[str, int] = {}
    for gate in netlist.gates():
        if gate.cell is not None:
            histogram[gate.cell] = histogram.get(gate.cell, 0) + 1
    return histogram
