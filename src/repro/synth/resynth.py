"""Local resynthesis helpers used by the Section V fanout optimization.

Two logically-exact rewrites:

* :func:`insert_buffer_pair` -- put ``INV1 -> INV2`` between a net and a
  chosen subset of its sinks (the paper's "adding two inverters in
  cascade between output of the scan flip-flops and their fanout gates").
* :func:`collapse_double_inverters` -- the paper's "re-synthesize the
  second inverter with its fanout gates": any inverter fed by ``INV2``
  recomputes ``INV1``'s value, so its sinks are rewired to ``INV1`` and
  the redundant inverter (and possibly ``INV2`` itself) is removed.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..cells import Library, default_library
from ..netlist import Netlist


def inverter_drive_for_fanout(n_sinks: int) -> float:
    """Drive strength an inverter needs for ``n_sinks`` gate loads."""
    if n_sinks >= 6:
        return 4.0
    if n_sinks >= 2:
        return 2.0
    return 1.0


def insert_buffer_pair(netlist: Netlist, net: str,
                       sinks: Optional[Set[str]] = None,
                       library: Optional[Library] = None,
                       ) -> Tuple[str, str]:
    """Insert ``net -> INV1 -> INV2`` and move ``sinks`` onto INV2's output.

    Returns the (INV1, INV2) net names.  ``sinks`` defaults to every
    current sink of ``net``.  If the netlist is cell-bound the new
    inverters are bound to INV cells, the second one sized for the
    fanout it takes over (the buffer must not slow the buffered paths
    more than necessary).
    """
    if sinks is None:
        sinks = netlist.fanout(net)
    inv1 = netlist.fresh_net(f"{net}_n")
    inv2 = netlist.fresh_net(f"{net}_p")
    cell1 = cell2 = None
    if any(g.cell is not None for g in netlist.gates()):
        lib = library or default_library()
        cell1 = lib.for_func("NOT", 1).name
        cell2 = lib.for_func(
            "NOT", 1, drive=inverter_drive_for_fanout(len(sinks))
        ).name
    netlist.add(inv1, "NOT", (net,), cell=cell1)
    netlist.add(inv2, "NOT", (inv1,), cell=cell2)
    netlist.redirect_fanout(net, inv2, only=set(sinks) - {inv1})
    return inv1, inv2


def existing_inverter(netlist: Netlist, net: str) -> Optional[str]:
    """An inverter already fed by ``net``, if any (paper: "If a scan
    flip-flop already has an inverter connected to it, we do not need
    the second inverter")."""
    for sink_name in sorted(netlist.fanout(net)):
        if netlist.gate(sink_name).func == "NOT":
            return sink_name
    return None


def collapse_double_inverters(netlist: Netlist, inv1: str, inv2: str) -> int:
    """Fold inverters fed by ``inv2`` back onto ``inv1`` and prune.

    Any gate ``NOT(inv2)`` computes the same value as ``inv1``; its sinks
    are rewired to ``inv1`` and it is deleted.  If that leaves ``inv2``
    without sinks (and it is not a primary/state output), ``inv2`` is
    deleted too.  Returns the number of gates removed.
    """
    removed = 0
    protected = set(netlist.outputs) | set(netlist.state_outputs)
    for sink_name in sorted(netlist.fanout(inv2)):
        sink = netlist.gate(sink_name)
        if sink.func != "NOT" or sink_name in protected:
            continue
        netlist.redirect_fanout(sink_name, inv1)
        if sink_name in protected or netlist.fanout(sink_name):
            continue
        netlist.remove_gate(sink_name)
        removed += 1
    if not netlist.fanout(inv2) and inv2 not in protected:
        netlist.remove_gate(inv2)
        removed += 1
    return removed


def prune_dangling(netlist: Netlist) -> int:
    """Remove combinational gates that drive nothing (iteratively)."""
    protected = set(netlist.outputs) | set(netlist.state_outputs)
    removed = 0
    changed = True
    while changed:
        changed = False
        for gate in list(netlist.gates()):
            if not gate.is_combinational:
                continue
            if gate.name in protected or netlist.fanout(gate.name):
                continue
            netlist.remove_gate(gate.name)
            removed += 1
            changed = True
    return removed
