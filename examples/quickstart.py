"""Quickstart: apply the three holding schemes to one circuit.

Reconstructs an ISCAS89 benchmark, technology-maps it, inserts full
scan, derives the three delay-test holding styles the paper compares
(enhanced scan, MUX-hold, FLH) and prints their area / delay / power
overheads over the plain scan baseline -- one row of each of the
paper's Tables I-III.

Run:  python examples/quickstart.py [circuit]
"""

import sys

from repro.bench import available_circuits, load_circuit
from repro.dft import (
    build_all_styles,
    compare_area,
    compare_delay,
    compare_power,
)
from repro.experiments.report import format_table
from repro.netlist import collect_stats


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    if name not in available_circuits():
        raise SystemExit(
            f"unknown circuit {name!r}; try one of {available_circuits()}"
        )

    print(f"Reconstructing {name} ...")
    netlist = load_circuit(name)
    print(f"  {collect_stats(netlist).as_row()}")

    print("Mapping, inserting scan and deriving the holding styles ...")
    designs = build_all_styles(netlist)
    for design in designs.values():
        print(f"  {design.describe()}")

    print("\nOverheads over the plain full-scan baseline:")
    rows = [
        {"metric": "area %", **_strip(compare_area(designs).as_row())},
        {"metric": "delay %", **_strip(compare_delay(designs).as_row())},
        {"metric": "power %", **_strip(compare_power(designs).as_row())},
    ]
    print(format_table(rows))
    print(
        "\nFLH holds the combinational state by supply-gating the "
        f"{len(designs['flh'].flh_gating)} unique first-level gates "
        "instead of latching every flip-flop output."
    )


def _strip(row):
    return {k: v for k, v in row.items() if k != "circuit"}


if __name__ == "__main__":
    main()
