"""Process variation and delay-test quality (the paper's opening case).

Section I of the paper argues that process fluctuation makes delay
testing mandatory.  This script makes the argument quantitative on a
reconstructed benchmark:

1. Monte-Carlo STA spreads the critical delay under per-gate variation
   and reports the probability of missing the rated clock;
2. a population of variation-induced gross delay defects is then tested
   by the arbitrary-style two-pattern test set (what enhanced scan and
   FLH apply) and by the broadside baseline -- the arbitrary set lets
   fewer defects escape.

Run:  python examples/variation_study.py [circuit]
"""

import sys

from repro import units
from repro.bench import load_circuit
from repro.experiments.report import format_table
from repro.fault import (
    STYLE_ARBITRARY,
    STYLE_BROADSIDE,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
    escape_study,
)
from repro.synth import map_netlist
from repro.timing import monte_carlo_delay


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    netlist = load_circuit(name)
    mapped = map_netlist(netlist)

    print(f"Monte-Carlo STA on {name} (200 samples, sigma = 8%/gate):")
    variation = monte_carlo_delay(mapped, n_samples=200, sigma=0.08)
    clock = variation.nominal_delay * 1.05
    print(
        f"  nominal {variation.nominal_delay / units.PS:.0f} ps, "
        f"mean {variation.mean / units.PS:.0f} ps, "
        f"std {variation.std / units.PS:.1f} ps, "
        f"worst {variation.worst / units.PS:.0f} ps"
    )
    print(
        f"  P(miss clock at nominal+5%) = "
        f"{variation.failure_probability(clock):.3f}"
        "  <- dies that pass stuck-at test but fail at speed"
    )

    print("\nGenerating two-pattern test sets ...")
    faults = collapse_transition(netlist, all_transition_faults(netlist))
    test_sets = {}
    for style in (STYLE_ARBITRARY, STYLE_BROADSIDE):
        result = TransitionAtpg(netlist, seed=3).generate(
            faults, style=style, n_random_pairs=48
        )
        test_sets[style] = result.tests
        print(f"  {style}: {len(result.tests)} tests, "
              f"coverage {result.coverage:.3f}")

    print("\nEscape study over one defect population:")
    escapes = escape_study(netlist, test_sets, n_defects=60, seed=9)
    rows = [
        {
            "test_set": label,
            "defects": r.n_defects,
            "caught": r.caught,
            "escape_rate": round(r.escape_rate, 3),
        }
        for label, r in escapes.items()
    ]
    print(format_table(rows))
    print(
        "\nThe arbitrary application style (enhanced scan / FLH) lets "
        "fewer variation-induced delay defects escape -- at a fraction "
        "of the enhanced-scan hardware when implemented as FLH."
    )


if __name__ == "__main__":
    main()
