"""End-to-end delay-test flow: ATPG to FLH test application.

The complete production-style loop the paper enables:

1. reconstruct + map a benchmark, insert scan and FLH;
2. generate two-pattern transition tests under *arbitrary* application
   (what enhanced scan and FLH both permit);
3. compare coverage against the skewed-load and broadside baselines --
   the paper's Section I motivation;
4. apply the first few deterministic tests through the clock-accurate
   FLH protocol and confirm the Fig. 5(b) sequence with zero
   combinational switching during scan.

Run:  python examples/delay_test_flow.py [circuit]
"""

import sys

from repro.bench import load_circuit
from repro.dft import build_all_styles
from repro.experiments.report import format_table
from repro.fault import (
    all_transition_faults,
    collapse_transition,
    compare_styles,
)
from repro.testapp import FIG5B_SEQUENCE, apply_two_pattern


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    netlist = load_circuit(name)
    faults = collapse_transition(netlist, all_transition_faults(netlist))
    print(f"{name}: {len(faults)} collapsed transition faults")

    print("Running transition ATPG under the three application styles ...")
    results = compare_styles(netlist, faults, n_random_pairs=48)
    rows = [
        {
            "style": style,
            "tests": len(r.tests),
            "coverage": round(r.coverage, 4),
            "effective": round(r.effective_coverage, 4),
            "untestable": len(r.untestable),
            "aborted": len(r.aborted),
        }
        for style, r in results.items()
    ]
    print(format_table(rows, title="transition-fault coverage by style"))
    print(
        "arbitrary = what enhanced scan and FLH both apply; broadside "
        "trails because V2 is locked to the circuit's own next state.\n"
    )

    print("Applying deterministic tests through the FLH protocol ...")
    designs = build_all_styles(netlist)
    flh = designs["flh"]
    arbitrary = results["arbitrary"]
    applied = 0
    for test in arbitrary.tests[:5]:
        trace = apply_two_pattern(flh, test.v1, test.v2)
        assert tuple(trace.event_messages()) == FIG5B_SEQUENCE
        assert trace.shift_comb_toggles == 0
        applied += 1
    print(
        f"applied {applied} tests: Fig. 5(b) sequence reproduced, "
        "combinational logic silent during every scan."
    )


if __name__ == "__main__":
    main()
