"""Why FLH needs a keeper: the floating-node study (Figs. 2-4).

Transient-simulates the supply-gated inverter chain twice -- once bare
and once with the Fig. 3 keeper -- and prints the OUT1/OUT2/OUT3
waveforms side by side.  Without the keeper the floated first-level
output leaks below the 600 mV trip point within nanoseconds and the
downstream state corrupts; with the keeper everything stays pinned.

Run:  python examples/floating_node_study.py
"""

from repro import units
from repro.experiments import fig2_decay, fig4_hold


def main() -> None:
    print("Simulating the gated chain WITHOUT the keeper (Fig. 2) ...")
    bare = fig2_decay.run(t_stop=40 * units.NS, samples=10)
    print(bare.render())

    print("\nSimulating the gated chain WITH the FLH keeper (Fig. 4) ...")
    kept = fig4_hold.run(t_stop=40 * units.NS, samples=10)
    print(kept.render())

    decay_ns = bare.report.decay_time / units.NS
    print(
        f"\nSummary: floated OUT1 fell below 600 mV after {decay_ns:.1f} ns "
        f"-- far inside a 1 us scan window (1000-bit chain at 1 GHz) -- "
        f"while the keeper held it at {kept.report.out1_min:.3f} V."
    )


if __name__ == "__main__":
    main()
