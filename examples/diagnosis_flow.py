"""Defect diagnosis from scan-test failures.

The paper notes that scan-based structural testing "not only helps
detection but also diagnosis".  This script plays the whole loop:

1. build the FLH design and a stuck-at test set (PODEM + cube merging);
2. pretend one die carries a random stuck-at defect: apply the tests
   and record which patterns fail;
3. run effect-cause diagnosis on the failure signature and show the
   ranked candidate list -- the injected defect (or an equivalent
   fault) lands at the top.

Run:  python examples/diagnosis_flow.py [circuit]
"""

import random
import sys

from repro.bench import load_circuit
from repro.experiments.report import format_table
from repro.fault import (
    all_stuck_faults,
    collapse_stuck,
    diagnose,
    fill_cube,
    generate_tests,
    merge_test_cubes,
    simulate_tester,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    netlist = load_circuit(name)
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))
    print(f"{name}: {len(faults)} collapsed stuck-at faults")

    print("Generating and compacting the test set ...")
    results = [
        r for r in generate_tests(netlist, faults, backtrack_limit=30)
        if r.detected
    ]
    merged = merge_test_cubes([r.cube for r in results])
    inputs = list(netlist.core_inputs)
    patterns = [fill_cube(cube, inputs) for cube in merged]
    print(
        f"  {len(results)} per-fault tests merged into "
        f"{len(patterns)} patterns"
    )

    rng = random.Random(int(sys.argv[2]) if len(sys.argv) > 2 else 42)
    defect = rng.choice([r.fault for r in results])
    print(f"\nInjecting defect {defect} into a virtual die ...")
    observed = simulate_tester(netlist, defect, patterns)
    failing = bin(observed).count("1")
    print(f"  tester observes {failing} failing patterns")

    print("\nRunning effect-cause diagnosis ...")
    ranked = diagnose(netlist, patterns, observed, faults, top=5)
    rows = [
        {
            "rank": i + 1,
            "candidate": str(c.fault),
            "matched": c.matched,
            "mispredicted": c.mispredicted,
            "unexplained": c.unexplained,
            "score": round(c.score, 3),
        }
        for i, c in enumerate(ranked)
    ]
    print(format_table(rows))
    top = ranked[0]
    verdict = (
        "exactly the injected defect"
        if top.fault == defect
        else "signature-equivalent to the injected defect"
        if top.perfect
        else "NOT the injected defect"
    )
    print(f"\nTop candidate {top.fault} is {verdict}.")


if __name__ == "__main__":
    main()
