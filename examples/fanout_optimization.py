"""Section V demo: local fanout optimization on a high-fanout circuit.

FLH pays per unique first-level gate, so flip-flops with many fanout
gates are expensive -- s838 is the paper's example.  This script runs
the buffer-insertion / inverter-resynthesis pass under the original
delay constraint and shows the first-level gate count and FLH area
overhead shrinking while the critical path stays put.

Run:  python examples/fanout_optimization.py [circuit]
"""

import sys

from repro import units
from repro.bench import load_circuit
from repro.dft import insert_scan, optimize_fanout
from repro.experiments.report import format_table
from repro.synth import map_netlist
from repro.timing import critical_delay


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s838"
    netlist = load_circuit(name)
    scan = insert_scan(map_netlist(netlist))
    before = critical_delay(scan.netlist, scan.library)
    print(
        f"{name}: {scan.n_scan_cells} flip-flops, critical delay "
        f"{before / units.PS:.0f} ps"
    )

    print("Running the Section V fanout optimization ...")
    result = optimize_fanout(scan, n_vectors=50)
    after = critical_delay(
        result.optimized.netlist, result.optimized.library
    )

    print(format_table([result.as_row()], title="Table IV row"))
    print(
        f"\nbuffers added: {result.buffers_added} "
        f"(over {result.ffs_optimized} optimized flip-flops)"
    )
    print(
        f"critical delay: {before / units.PS:.0f} ps -> "
        f"{after / units.PS:.0f} ps (constraint: unchanged)"
    )
    print(
        f"FLH area overhead: {result.area_overhead_before_pct:.2f}% -> "
        f"{result.area_overhead_after_pct:.2f}% "
        f"({result.area_improvement_pct:.1f}% improvement)"
    )


if __name__ == "__main__":
    main()
