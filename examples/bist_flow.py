"""Test-per-scan BIST with FLH (paper Section IV).

Runs pseudo-random BIST sessions on an FLH design: a weighted LFSR
feeds the scan chain and the primary inputs, the MISR compacts the
responses, and the FLH gating keeps the combinational logic silent for
the entire shifting -- the power advantage of enhanced scan, carried
over to BIST for a fraction of the hardware.

Run:  python examples/bist_flow.py [circuit]
"""

import sys

from repro.bench import load_circuit
from repro.bist import coverage_curve, run_bist
from repro.dft import build_all_styles
from repro.experiments.report import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    designs = build_all_styles(load_circuit(name))
    flh = designs["flh"]
    scan = designs["scan"]

    print(f"BIST coverage curve on {name} (FLH design):")
    curve = coverage_curve(flh, checkpoints=(16, 32, 64, 128))
    print(format_table(
        [{"patterns": n, "stuck_coverage": round(c, 4)} for n, c in curve]
    ))

    print("\nWeighted-random sessions (64 patterns each):")
    rows = []
    for weight in (0.25, 0.5, 0.75):
        rows.append(run_bist(flh, n_patterns=64, weight=weight).as_row())
    print(format_table(rows))

    plain = run_bist(scan, n_patterns=64)
    gated = run_bist(flh, n_patterns=64)
    print(
        f"\nshift-mode combinational toggles: plain scan = "
        f"{plain.shift_comb_toggles}, FLH = {gated.shift_comb_toggles}"
    )
    print(
        "same coverage, same signature stream -- but FLH shifts without "
        "burning combinational power."
    )


if __name__ == "__main__":
    main()
