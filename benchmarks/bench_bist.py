"""Bench: test-per-scan BIST with FLH (Section IV extension).

Runs pseudo-random BIST sessions on an FLH design: coverage curve over
pattern count, signature stability, and zero combinational switching
while the chain shifts (the FLH isolation carrying over to BIST).
"""

from _util import save_result

from repro.bist import coverage_curve, run_bist
from repro.experiments.common import styled_designs
from repro.experiments.report import format_table


def run_sessions():
    designs = styled_designs("s298")
    flh = designs["flh"]
    scan = designs["scan"]
    curve = coverage_curve(flh, checkpoints=(16, 64, 256))
    flh_run = run_bist(flh, n_patterns=64, seed=5)
    scan_run = run_bist(scan, n_patterns=64, seed=5)
    return curve, flh_run, scan_run


def test_bist_flow(benchmark):
    curve, flh_run, scan_run = benchmark.pedantic(
        run_sessions, rounds=1, iterations=1
    )
    rows = [
        {"patterns": n, "stuck_coverage": round(c, 4)} for n, c in curve
    ]
    text = format_table(rows, title="BIST coverage curve (s298, FLH)")
    text += "\n" + format_table(
        [flh_run.as_row(), scan_run.as_row()], title="64-pattern sessions"
    )
    save_result("bist_flow", text)

    coverages = [c for _, c in curve]
    assert coverages == sorted(coverages), "coverage curve must not drop"
    assert coverages[-1] > 0.6
    assert flh_run.shift_comb_toggles == 0, "FLH isolates BIST shifting"
    assert scan_run.shift_comb_toggles > 0
    assert flh_run.stuck_coverage == scan_run.stuck_coverage, (
        "holding logic must not change BIST coverage (Section IV)"
    )
