"""Bench: ATPG engine throughput and quality.

Not a paper table, but the substrate the coverage results stand on:
runs PODEM over the collapsed stuck-at list of s298 and verifies every
generated test in the fault simulator.
"""

from _util import save_result

from repro.bench import load_circuit
from repro.experiments.report import format_table
from repro.fault import (
    FaultSimulator,
    all_stuck_faults,
    collapse_stuck,
    generate_tests,
)


def run_atpg():
    netlist = load_circuit("s298")
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))
    results = generate_tests(netlist, faults, backtrack_limit=30)
    return netlist, faults, results


def test_atpg_flow(benchmark):
    netlist, faults, results = benchmark.pedantic(
        run_atpg, rounds=1, iterations=1
    )
    detected = [r for r in results if r.detected]
    untestable = [r for r in results if r.status == "untestable"]
    aborted = [r for r in results if r.status == "aborted"]

    sim = FaultSimulator(netlist)
    verified = sim.simulate_stuck(
        [r.fault for r in detected], [r.test for r in detected]
    )
    rows = [
        {
            "faults": len(faults),
            "detected": len(detected),
            "untestable": len(untestable),
            "aborted": len(aborted),
            "verified_%": round(verified.coverage * 100, 2),
        }
    ]
    save_result("atpg_flow", format_table(rows, title="PODEM on s298"))

    assert verified.coverage == 1.0, "every generated test must verify"
    assert len(detected) / len(faults) > 0.7
