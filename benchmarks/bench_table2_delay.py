"""Bench: regenerate Table II (delay overhead, 11 circuits).

Paper shape asserted: the MUX method is the slowest and FLH the fastest
on every circuit; FLH's average delay-overhead reduction versus
enhanced scan lands in the paper's ~71% band.
"""

from _util import save_result

from repro.experiments import table2_delay


def test_table2_delay(benchmark):
    result = benchmark.pedantic(table2_delay.run, rounds=1, iterations=1)
    save_result("table2_delay", result.render())

    for cmp in result.comparisons:
        assert cmp.mux_pct > cmp.enhanced_pct, (
            f"{cmp.circuit}: MUX must be the slowest scheme"
        )
        assert cmp.flh_pct < cmp.enhanced_pct, (
            f"{cmp.circuit}: FLH must beat enhanced scan on delay"
        )
        assert cmp.flh_pct > 0.0, (
            f"{cmp.circuit}: FLH still has a nonzero delay overhead"
        )
    assert 45.0 < result.average_improvement_vs_enhanced < 90.0, (
        "average improvement should be in the paper's ~71% band, got "
        f"{result.average_improvement_vs_enhanced:.1f}%"
    )
