"""Bench: gating-transistor sizing ablation (Section III discussion).

Paper shape asserted: widening the supply-gating devices monotonically
reduces the FLH delay penalty and increases the area penalty, while the
normal-mode switching power stays flat ("does not affect the switching
power of the gates").
"""

from _util import save_result

from repro.experiments import ablation_sizing


def run_ablation():
    return ablation_sizing.run("s298", n_vectors=60)


def test_ablation_sizing(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result("ablation_sizing", result.render())

    assert result.delay_monotonic_down
    assert result.area_monotonic_up
    powers = [row["power_ovh_%"] for row in result.rows]
    assert max(powers) - min(powers) < 0.5, (
        "sizing must not move the switching power"
    )
