"""Bench: regenerate Table III (normal-mode power overhead, 11 circuits).

Paper shape asserted: FLH power stays close to the original circuit
(within a few percent, sometimes below it -- notably for the largest
circuit s13207), while enhanced scan and the MUX method pay real
overheads; the average power-overhead reduction versus enhanced scan
lands in the paper's ~90% band.
"""

from _util import save_result

from repro.experiments import table3_power


def test_table3_power(benchmark):
    result = benchmark.pedantic(table3_power.run, rounds=1, iterations=1)
    save_result("table3_power", result.render())

    for cmp in result.comparisons:
        assert abs(cmp.flh_pct) < 4.0, (
            f"{cmp.circuit}: FLH power should be close to the original"
        )
        assert cmp.enhanced_pct > cmp.mux_pct > 0.0, (
            f"{cmp.circuit}: enhanced scan must pay more power than MUX"
        )
    s13207 = next(c for c in result.comparisons if c.circuit == "s13207")
    assert s13207.flh_pct < 0.0, (
        "the largest circuit should dip below the original power "
        "(leakage stacking, paper Section III)"
    )
    assert result.average_improvement_vs_enhanced > 75.0, (
        "average power-overhead improvement should be in the paper's "
        f"~90% band, got {result.average_improvement_vs_enhanced:.1f}%"
    )
