"""Bench: scan-shift power isolation (Section IV / Gerstendoerfer claim).

Measures test-mode combinational switching energy with and without
holding logic on three circuits.  Paper shape asserted: isolation
(enhanced scan or FLH -- both are total) removes all combinational
shift energy, a large fraction of the total test energy (the cited
reference reports ~78% on average; the exact split depends on the
circuit's gate-to-flip-flop ratio).
"""

from _util import save_result

from repro.experiments.common import styled_designs
from repro.experiments.report import format_table
from repro.testapp import shift_power_study


def run_study():
    rows = []
    for name in ("s298", "s838", "s5378"):
        designs = styled_designs(name)
        flh = shift_power_study(
            designs["scan"], designs["flh"], n_patterns=6
        )
        enh = shift_power_study(
            designs["scan"], designs["enhanced"], n_patterns=6
        )
        rows.append(
            {
                "circuit": name,
                "comb_energy_pJ": round(flh.comb_energy_plain * 1e12, 2),
                "chain_energy_pJ": round(flh.chain_energy * 1e12, 2),
                "saving_flh_%": round(flh.saving_fraction * 100, 1),
                "saving_enh_%": round(enh.saving_fraction * 100, 1),
            }
        )
    return rows


def test_shift_power(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    save_result(
        "shift_power",
        format_table(rows, title="scan-shift energy saved by isolation"),
    )

    for row in rows:
        assert row["saving_flh_%"] > 20.0, (
            f"{row['circuit']}: isolation should remove a large share of "
            "test energy"
        )
        assert row["saving_flh_%"] == row["saving_enh_%"], (
            "FLH must be exactly as effective as enhanced scan isolation"
        )
    # Gate-rich circuits push the comb share (and the saving) up.
    assert rows[-1]["saving_flh_%"] >= rows[0]["saving_flh_%"]
