"""Bench: shift-power-aware chain ordering vs FLH isolation.

Chain reordering is the classic low-power-scan knob for *chain* (flip-
flop) switching; FLH removes the *combinational* share entirely.  This
bench quantifies both on one circuit: the reorder cuts chain toggles
substantially, and stacking FLH on top removes all remaining logic
switching -- the levers compose.
"""

from _util import save_result

from repro.dft import insert_flh
from repro.experiments.common import styled_designs
from repro.experiments.report import format_table
from repro.power import LogicSimulator
from repro.testapp import ScanChainSimulator, reorder_design


def run_ordering():
    scan = styled_designs("s298")["scan"]
    reordered = reorder_design(scan, n_vectors=120, seed=5)
    reordered_flh = insert_flh(reordered)

    logic = LogicSimulator(scan.netlist)
    frames = logic.run_sequential(logic.random_vectors(30, seed=77))
    states = [
        {ff: frame[ff] for ff in scan.scan_chain} for frame in frames[5:]
    ]

    def measure(design):
        sim = ScanChainSimulator(design)
        chain_toggles = comb_toggles = 0
        current = {ff: 0 for ff in design.scan_chain}
        for state in states:
            trace = sim.shift_in(state, initial_state=current)
            chain_toggles += trace.chain_toggles
            comb_toggles += trace.comb_toggles
            current = trace.final_state
        return chain_toggles, comb_toggles

    rows = []
    for label, design in (
        ("scan, declaration order", scan),
        ("scan, power-aware order", reordered),
        ("FLH, power-aware order", reordered_flh),
    ):
        chain_toggles, comb_toggles = measure(design)
        rows.append(
            {
                "configuration": label,
                "chain_toggles": chain_toggles,
                "comb_toggles": comb_toggles,
            }
        )
    return rows


def test_chain_order(benchmark):
    rows = benchmark.pedantic(run_ordering, rounds=1, iterations=1)
    save_result(
        "chain_order",
        format_table(rows, title="scan-shift switching by configuration"),
    )

    base, reordered, flh = rows
    assert reordered["chain_toggles"] < base["chain_toggles"] * 0.85, (
        "power-aware ordering should cut chain toggles noticeably"
    )
    assert flh["comb_toggles"] == 0, "FLH removes all comb. switching"
    assert flh["chain_toggles"] == reordered["chain_toggles"], (
        "FLH does not disturb the chain itself"
    )
