"""Bench: glitch-aware power and the robustness of Table III.

The paper measures power with NanoSim, which sees hazard (glitch)
switching; our default activity model is zero-delay.  This bench
measures per-circuit glitch factors with the transport-delay event
simulator and re-evaluates the Table III comparison with
glitch-inclusive activity: FLH's near-zero power overhead must survive
the model upgrade (the keepers ride the first-level outputs, glitches
included, while the hold latch still burns on every flip-flop toggle).
"""

from _util import save_result

from repro import units
from repro.dft import flh_power_overlay
from repro.experiments.common import styled_designs
from repro.experiments.report import format_table
from repro.power import analyze_power, glitch_activity, glitch_study


def run_glitch():
    rows = []
    for name in ("s298", "s526", "s1238"):
        designs = styled_designs(name)
        scan = designs["scan"]
        report = glitch_study(scan.netlist, n_vectors=40)

        # Glitch-aware Table III row: activity from the event simulator.
        def glitch_power(design, overlay=None):
            activity = glitch_activity(
                design.netlist, n_vectors=40, library=design.library
            )
            return analyze_power(
                design.netlist, design.library, overlay,
                activity=activity,
            ).total

        base = glitch_power(scan)
        enh = glitch_power(designs["enhanced"])
        flh = glitch_power(
            designs["flh"], flh_power_overlay(designs["flh"])
        )
        rows.append(
            {
                "circuit": name,
                "glitch_factor": round(report.glitch_factor, 2),
                "enhanced_%": round((enh - base) / base * 100, 2),
                "flh_%": round((flh - base) / base * 100, 2),
            }
        )
    return rows


def test_glitch_power(benchmark):
    rows = benchmark.pedantic(run_glitch, rounds=1, iterations=1)
    save_result(
        "glitch_power",
        format_table(
            rows, title="glitch-aware power overhead (Table III check)"
        ),
    )

    for row in rows:
        assert row["glitch_factor"] >= 1.0
        assert abs(row["flh_%"]) < 4.0, (
            f"{row['circuit']}: FLH must stay near the original power "
            "even with glitch-inclusive activity"
        )
        assert row["enhanced_%"] > row["flh_%"], (
            f"{row['circuit']}: the Table III ranking must survive the "
            "glitch-aware model"
        )
