"""Bench: tester-time accounting across application styles.

The flip side the paper leaves implicit: arbitrary two-pattern schemes
(enhanced scan and FLH alike) scan two patterns per test, so per-test
tester time doubles versus broadside.  Coverage per cycle is what
matters: this bench reports shift cycles per detected fault for the
arbitrary and broadside test sets, plus the multi-chain lever.
"""

from _util import save_result

from repro.experiments.common import circuit, styled_designs
from repro.experiments.report import format_table
from repro.fault import (
    STYLE_ARBITRARY,
    STYLE_BROADSIDE,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
)
from repro.testapp import flush_test, tester_time


def run_test_time():
    name = "s298"
    netlist = circuit(name)
    designs = styled_designs(name)
    faults = collapse_transition(netlist, all_transition_faults(netlist))

    rows = []
    for style, design in (
        (STYLE_ARBITRARY, designs["flh"]),
        (STYLE_BROADSIDE, designs["scan"]),
    ):
        result = TransitionAtpg(netlist, seed=3).generate(
            faults, style=style, n_random_pairs=32
        )
        assert flush_test(design)
        timing = tester_time(design, n_tests=len(result.tests))
        timing4 = tester_time(
            design, n_tests=len(result.tests), n_chains=4
        )
        detected = max(len(result.detected), 1)
        rows.append(
            {
                "style": style,
                "tests": len(result.tests),
                "detected": len(result.detected),
                "cycles_1chain": timing.total_cycles,
                "cycles_4chains": timing4.total_cycles,
                "cycles_per_detect": round(
                    timing.total_cycles / detected, 1
                ),
            }
        )
    return rows


def test_test_time(benchmark):
    rows = benchmark.pedantic(run_test_time, rounds=1, iterations=1)
    save_result(
        "test_time",
        format_table(rows, title="tester time by application style (s298)"),
    )

    arb, brd = rows
    assert arb["detected"] > brd["detected"], (
        "arbitrary application must detect more faults"
    )
    for row in rows:
        assert row["cycles_4chains"] < row["cycles_1chain"]
    # Despite double scan-ins, the arbitrary set should stay competitive
    # per detected fault (it needs far fewer wasted tests).
    assert arb["cycles_per_detect"] < 3 * brd["cycles_per_detect"]
