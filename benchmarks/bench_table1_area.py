"""Bench: regenerate Table I (percentage area increase, 11 circuits).

Paper shape asserted: FLH has the smallest area overhead on most
circuits (MUX middle, enhanced scan largest), with the s838-class
high-fanout exception; FLH's average overhead reduction versus enhanced
scan lands in the paper's ~33% band.
"""

from _util import save_result

from repro.experiments import table1_area


def test_table1_area(benchmark):
    result = benchmark.pedantic(table1_area.run, rounds=1, iterations=1)
    save_result("table1_area", result.render())

    wins = sum(
        1 for c in result.comparisons if c.flh_pct < min(c.enhanced_pct, c.mux_pct)
    )
    assert wins >= len(result.comparisons) - 2, (
        "FLH should have the smallest area overhead for most circuits"
    )
    s838 = next(c for c in result.comparisons if c.circuit == "s838")
    assert s838.flh_pct > s838.mux_pct, (
        "the high-fanout s838 should invert the ranking (paper text)"
    )
    assert 15.0 < result.average_improvement_vs_enhanced < 55.0, (
        "average improvement vs enhanced scan should be in the paper's "
        f"~33% band, got {result.average_improvement_vs_enhanced:.1f}%"
    )
    assert result.average_improvement_vs_mux > 5.0
