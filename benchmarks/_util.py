"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, asserts
its qualitative shape, and archives the rendered text under
``benchmarks/results/`` so EXPERIMENTS.md can quote actual runs.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> None:
    """Write a rendered table/figure to benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
