"""Bench: regenerate Fig. 4 (FLH keeper holds the gated stage).

Paper shape asserted: with the Fig. 3 keeper enabled in sleep mode, all
three chain outputs stay pinned at their rails for the whole window
despite the input switching -- "the circuit can strongly hold its
state".
"""

from _util import save_result

from repro import units
from repro.experiments import fig4_hold


def test_fig4_hold(benchmark):
    result = benchmark.pedantic(
        fig4_hold.run, kwargs={"t_stop": 150 * units.NS},
        rounds=1, iterations=1,
    )
    save_result("fig4_hold", result.render())

    report = result.report
    assert report.holds(margin=0.1)
    assert report.out1_min > 0.9 * units.VDD_70NM
    assert report.out2_max < 0.1 * units.VDD_70NM
    assert report.out3_min > 0.9 * units.VDD_70NM
