"""Bench: regenerate Fig. 2 (floating-node decay, no keeper).

Paper shape asserted: with the first stage supply-gated and the input
switching during sleep, OUT1 decays below 600 mV well within the 100 ns
window, the following stage flips (state corrupted), and static supply
current appears in the downstream stages.
"""

from _util import save_result

from repro import units
from repro.experiments import fig2_decay


def test_fig2_decay(benchmark):
    result = benchmark.pedantic(
        fig2_decay.run, kwargs={"t_stop": 60 * units.NS},
        rounds=1, iterations=1,
    )
    save_result("fig2_decay", result.render())

    report = result.report
    assert report.decay_time is not None
    assert report.decay_time < 100 * units.NS
    assert report.out2_final > 0.5, "second stage must flip (corruption)"
    assert report.peak_static_current > 1e-6, (
        "static current must appear as OUT1 passes mid-rail"
    )
