"""Bench: the skewed-load fast scan-enable cost (Section I claim).

"Design requirement for skewed-load case can be costly because of fast
switching scan enable signal": SE must flip between the last shift and
the capture inside one rated clock, so its distribution tree is sized
like a clock branch.  Enhanced scan / FLH / broadside tolerate a slow SE
and a minimum tree.  This bench sizes both trees per circuit.
"""

from _util import save_result

from repro.dft import scan_enable_cost_comparison
from repro.experiments.common import styled_designs
from repro.experiments.report import format_table


def run_se_cost():
    rows = []
    for name in ("s298", "s838", "s5378", "s13207"):
        scan = styled_designs(name)["scan"]
        result = scan_enable_cost_comparison(scan)
        slow, fast = result["slow"], result["fast"]
        rows.append(
            {
                "circuit": name,
                "scan_cells": slow.n_sinks,
                "tree_levels": slow.levels,
                "slow_SE_drive": slow.buffer_drive,
                "fast_SE_drive": fast.buffer_drive,
                "area_ratio": round(result["area_ratio"], 2),
            }
        )
    return rows


def test_scan_enable_cost(benchmark):
    rows = benchmark.pedantic(run_se_cost, rounds=1, iterations=1)
    save_result(
        "scan_enable",
        format_table(
            rows,
            title="fast (skewed-load) vs slow scan-enable tree cost",
        ),
    )

    for row in rows:
        assert row["area_ratio"] >= 1.0
        assert row["fast_SE_drive"] >= row["slow_SE_drive"]
    # The largest circuits must show a real premium for the fast SE.
    assert any(row["area_ratio"] > 1.5 for row in rows), (
        "fast scan-enable should cost noticeably more on big designs"
    )
