"""Bench: process variation and delay-test quality (Section I motivation).

Two measurements that close the paper's opening argument:

1. Monte-Carlo STA: per-gate delay fluctuation spreads the critical
   delay, so a die can fail at the rated clock without any stuck-at
   defect -- the reason delay testing "is becoming mandatory".
2. Defect-escape study: the same population of variation-induced gross
   delay defects is tested by the arbitrary-style (enhanced scan / FLH)
   test set and by the broadside baseline; the arbitrary set lets fewer
   escape.
"""

from _util import save_result

from repro.experiments import variation_quality
from repro.fault import STYLE_ARBITRARY


def test_variation_and_quality(benchmark):
    result = benchmark.pedantic(
        variation_quality.run, rounds=1, iterations=1
    )
    save_result("variation_quality", result.render())

    assert result.variation.std > 0.0
    assert 0.0 <= result.failure_probability < 1.0
    assert result.ordering_holds, (
        "arbitrary application must not let more defects escape"
    )
    assert result.escapes[STYLE_ARBITRARY].escape_rate < 0.6
