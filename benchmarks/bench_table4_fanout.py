"""Bench: regenerate Table IV (fanout optimization, 8 circuits).

Paper shape asserted: the Section V pass reduces the number of first-
level gates and the FLH area overhead (average improvement in the
paper's ~18% band, best case tens of percent) under an unchanged delay
constraint, with comparable combinational power; at least one circuit
ends up with fewer first-level gates than flip-flops (the paper calls
out s5378).
"""

from _util import save_result

from repro.experiments import table4_fanout


def run_table4():
    # Bound the per-circuit work on the very large circuits: the top
    # candidates carry almost all of the improvement.
    return table4_fanout.run(n_vectors=50, max_candidates=120)


def test_table4_fanout(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_result("table4_fanout", result.render())

    for r in result.results:
        assert r.first_level_after <= r.first_level_before
        assert r.area_overhead_after_pct <= r.area_overhead_before_pct + 1e-9
    assert result.average_improvement > 5.0, (
        "average area-overhead improvement should be meaningful "
        f"(paper ~18%), got {result.average_improvement:.1f}%"
    )
    assert result.best_improvement > 15.0
    assert result.circuits_below_ff_count, (
        "some circuit should end with fewer first-level gates than "
        "flip-flops (paper: s5378)"
    )
