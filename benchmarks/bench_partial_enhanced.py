"""Bench: partial enhanced scan trade-off (reference [3] baseline).

The paper positions FLH against alternatives that are "not as efficient
... with respect to fault coverage" -- partial enhanced scan trades
hold latches for coverage.  This bench sweeps the held fraction and
shows the coverage climbing toward (and the area overhead climbing past)
full enhanced scan, while FLH sits at full coverage for less area.
"""

from _util import save_result

from repro.experiments import partial_study


def test_partial_enhanced_tradeoff(benchmark):
    result = benchmark.pedantic(partial_study.run, rounds=1, iterations=1)
    save_result("partial_enhanced", result.render())

    partial_rows = result.partial_rows
    coverages = [r["coverage"] for r in partial_rows]
    areas = [r["area_ovh_%"] for r in partial_rows]
    assert areas == sorted(areas), "area must grow with held fraction"
    assert coverages[-1] >= coverages[0], "coverage must not fall"
    assert result.flh_dominates, (
        "FLH must match full-enhanced-scan coverage at lower area"
    )
