"""Bench: Section IV coverage claims.

Regenerates the transition-coverage comparison (arbitrary vs skewed-load
vs broadside) and the enhanced-scan/FLH response-equality check on two
circuits.  Paper shape asserted: arbitrary (= enhanced scan = FLH)
coverage dominates skewed-load dominates broadside, and enhanced scan
and FLH capture byte-identical responses for the same test set.
"""

from _util import save_result

from repro.experiments import coverage_study
from repro.experiments.report import format_table


def run_coverage():
    return [
        coverage_study.run(name, n_random_pairs=48, n_check_tests=10,
                           n_shift_patterns=4)
        for name in ("s298", "s344")
    ]


def test_coverage_study(benchmark):
    results = benchmark.pedantic(run_coverage, rounds=1, iterations=1)
    text = "\n\n".join(r.render() for r in results)
    rows = [
        {
            "circuit": r.circuit,
            "arbitrary": round(r.effective_by_style["arbitrary"], 4),
            "skewed": round(r.effective_by_style["skewed-load"], 4),
            "broadside": round(r.effective_by_style["broadside"], 4),
        }
        for r in results
    ]
    text += "\n\n" + format_table(rows, title="effective coverage summary")
    save_result("coverage_study", text)

    for r in results:
        assert r.ordering_holds, f"{r.circuit}: coverage ordering violated"
        assert r.responses_identical, (
            f"{r.circuit}: enhanced scan and FLH must capture identical "
            "responses"
        )
        assert (
            r.effective_by_style["broadside"]
            < r.effective_by_style["arbitrary"]
        ), f"{r.circuit}: broadside should clearly trail (paper Section I)"
