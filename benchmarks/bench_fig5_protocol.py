"""Bench: regenerate Fig. 5(b) (FLH test-application timing diagram).

Paper shape asserted: the applied sequence matches the canonical
scan-V1 / apply-V1 / hold-while-scanning-V2 / launch / capture order,
with zero combinational switching while either pattern shifts.
"""

from _util import save_result

from repro.experiments import fig5_timing


def test_fig5_protocol(benchmark):
    result = benchmark.pedantic(
        fig5_timing.run, kwargs={"circuit_name": "s298"},
        rounds=1, iterations=1,
    )
    save_result("fig5_protocol", result.render())

    assert result.matches_canonical
    assert result.isolated
