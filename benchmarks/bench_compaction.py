"""Bench: static compaction of two-pattern test sets.

The paper weighs DFT schemes by "fault coverage and required number of
test patterns"; this bench measures how far reverse-order static
compaction shrinks the arbitrary-style test set at identical coverage.
"""

from _util import save_result

from repro.experiments.common import circuit
from repro.experiments.report import format_table
from repro.fault import (
    FaultSimulator,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
    compact_two_pattern_tests,
)


def run_compaction():
    rows = []
    for name in ("s298", "s344"):
        netlist = circuit(name)
        faults = collapse_transition(
            netlist, all_transition_faults(netlist)
        )
        result = TransitionAtpg(netlist, seed=3).generate(
            faults, n_random_pairs=48
        )
        compacted = compact_two_pattern_tests(
            netlist, faults, result.tests
        )
        sim = FaultSimulator(netlist)
        cov_after = sim.simulate_transition(
            faults, [(t.v1, t.v2) for t in compacted.kept]
        ).coverage
        rows.append(
            {
                "circuit": name,
                "tests_before": len(result.tests),
                "tests_after": len(compacted.kept),
                "ratio": round(compacted.ratio, 3),
                "coverage_before": round(result.coverage, 4),
                "coverage_after": round(cov_after, 4),
            }
        )
    return rows


def test_compaction(benchmark):
    rows = benchmark.pedantic(run_compaction, rounds=1, iterations=1)
    save_result(
        "compaction",
        format_table(rows, title="two-pattern test-set compaction"),
    )

    for row in rows:
        assert row["tests_after"] < row["tests_before"]
        assert row["coverage_after"] >= row["coverage_before"] - 1e-9
        assert row["ratio"] < 0.9
